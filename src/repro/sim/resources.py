"""Synchronization primitives for simulated processes.

Three primitives cover every need in the reproduction:

- :class:`Resource` -- a counted FIFO resource (capacity ``c`` grants at a
  time); models devices that serialize work, like a disk head or a bounded
  thread pool.
- :class:`Lock` -- a ``Resource`` with capacity one plus a context-manager
  style helper.
- :class:`ByteRangeLock` -- grants exclusive access to byte ranges and
  allows disjoint ranges to proceed in parallel.  This models the paper's
  reconstruction locking comparison (Table 2): locking the *entire*
  superchunk serializes the XOR work of recovery threads, while a
  byte-range lock lets threads working on different file regions overlap.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator
from repro.sim.snapshot import InlineState


class Resource(InlineState):
    """A counted FIFO resource.

    Usage from a process body::

        grant = yield resource.request()
        try:
            ...
        finally:
            resource.release(grant)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Event] = deque()
        # Accounting for utilization reports.
        self.total_waits = 0
        self.total_grants = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        """Return an event that fires when a unit of the resource is granted.

        The event's value is an opaque grant token to pass to
        :meth:`release`.  The construct-and-succeed path is flattened
        (direct slot writes, no constructor or trigger frames): every
        simulated I/O passes through here once.
        """
        sim = self.sim
        event = Event.__new__(Event)
        event.sim = sim
        event._callbacks = None
        event._exception = None
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            self.total_grants += 1
            # Inlined event.succeed(_Grant(self)).
            event._value = _Grant(self)
            event.triggered = True
            event._scheduled = True
            sim._seq += 1
            sim._now_bucket.append((sim._seq, event))
        else:
            event._value = None
            event.triggered = False
            event._scheduled = False
            self.total_waits += 1
            self._queue.append(event)
        return event

    def release(self, grant: "_Grant") -> None:
        if grant.resource is not self:
            raise SimulationError("grant released to the wrong resource")
        if grant.released:
            raise SimulationError("grant released twice")
        if self._queue:
            # O(1) FIFO handoff: the released token passes straight to the
            # head waiter with no allocation.  The unit never goes idle,
            # so _in_use is untouched and the token stays live.  Inlined
            # waiter.succeed(grant): queued events are request()-private
            # and still pending, so the triggered/scheduled checks are
            # statically true.
            waiter = self._queue.popleft()
            self.total_grants += 1
            waiter._value = grant
            waiter.triggered = True
            waiter._scheduled = True
            sim = waiter.sim
            sim._seq += 1
            sim._now_bucket.append((sim._seq, waiter))
        else:
            grant.released = True
            self._in_use -= 1


class _Grant:
    """Opaque token representing one granted unit of a :class:`Resource`."""

    __slots__ = ("resource", "released")

    def __init__(self, resource: Resource) -> None:
        self.resource = resource
        self.released = False


class Lock(Resource):
    """A mutual-exclusion lock (a capacity-one :class:`Resource`)."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name)

    def locked(self) -> bool:
        return self._in_use >= self.capacity


class ByteRangeLock(InlineState):
    """Exclusive locking over half-open byte ranges ``[start, end)``.

    Requests for overlapping ranges are granted in FIFO order; requests for
    disjoint ranges proceed concurrently.  This is deliberately simple
    (linear scan of held ranges) -- the recovery path holds at most a few
    dozen ranges at a time.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._held: List[Tuple[int, int]] = []
        self._waiters: Deque[Tuple[int, int, Event]] = deque()

    @staticmethod
    def _overlaps(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
        return a_start < b_end and b_start < a_end

    def _conflicts(self, start: int, end: int) -> bool:
        return any(
            self._overlaps(start, end, h_start, h_end) for h_start, h_end in self._held
        )

    def acquire(self, start: int, end: int) -> Event:
        """Return an event granting exclusive access to ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty byte range [{start}, {end})")
        event = self.sim.event()
        if not self._conflicts(start, end) and not self._blocked_by_waiter(start, end):
            self._held.append((start, end))
            event.succeed((start, end))
        else:
            self._waiters.append((start, end, event))
        return event

    def _blocked_by_waiter(self, start: int, end: int) -> bool:
        # FIFO fairness: a new request must queue behind any earlier waiter
        # it overlaps, otherwise a stream of small requests could starve a
        # wide one.
        return any(
            self._overlaps(start, end, w_start, w_end)
            for w_start, w_end, _ev in self._waiters
        )

    def release(self, grant: Tuple[int, int]) -> None:
        try:
            self._held.remove(grant)
        except ValueError:
            raise SimulationError(f"byte range {grant} released but not held") from None
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        # Grant waiters in FIFO order, skipping over (but not past) blocked
        # ones: a waiter may only be granted if it conflicts with neither
        # held ranges nor *earlier* still-queued waiters.
        granted_any = True
        while granted_any:
            granted_any = False
            earlier: List[Tuple[int, int]] = []
            for index, (start, end, event) in enumerate(self._waiters):
                blocked = self._conflicts(start, end) or any(
                    self._overlaps(start, end, e_start, e_end)
                    for e_start, e_end in earlier
                )
                if not blocked:
                    del self._waiters[index]
                    self._held.append((start, end))
                    event.succeed((start, end))
                    granted_any = True
                    break
                earlier.append((start, end))

    @property
    def held_ranges(self) -> List[Tuple[int, int]]:
        return list(self._held)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class ElevatorResource(InlineState):
    """A capacity-one resource granting waiters in C-LOOK disk order.

    Waiters declare a *position* (byte offset); on each release the next
    grant goes to the nearest waiter at or beyond the last served
    position, wrapping to the lowest waiter when the sweep passes the
    end -- the classic one-direction elevator.  Starvation-free: every
    sweep visits every waiter once.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._in_use = False
        self._waiters: List[Tuple[int, int, Event]] = []  # (position, seq, event)
        self._seq = 0
        self._head_position = 0
        self.total_grants = 0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self, position: int) -> Event:
        event = self.sim.event()
        if not self._in_use and not self._waiters:
            self._in_use = True
            self._head_position = position
            self.total_grants += 1
            event.succeed(_Grant(self))
        else:
            self._seq += 1
            self._waiters.append((position, self._seq, event))
        return event

    def release(self, grant: "_Grant") -> None:
        if grant.resource is not self:
            raise SimulationError("grant released to the wrong resource")
        if grant.released:
            raise SimulationError("grant released twice")
        grant.released = True
        if not self._waiters:
            self._in_use = False
            return
        # C-LOOK: nearest waiter at/after the head; else wrap to lowest.
        ahead = [w for w in self._waiters if w[0] >= self._head_position]
        pool = ahead or self._waiters
        chosen = min(pool, key=lambda w: (w[0], w[1]))
        self._waiters.remove(chosen)
        position, _seq, event = chosen
        self._head_position = position
        self.total_grants += 1
        event.succeed(_Grant(self))


def with_resource(resource: Resource, body: Generator) -> Generator:
    """Process helper: run generator ``body`` while holding ``resource``.

    Usage: ``result = yield from with_resource(disk_lock, do_io())``.
    """
    grant = yield resource.request()
    try:
        result = yield from body
    finally:
        resource.release(grant)
    return result
