"""Mechanical hard-drive timing model with failure injection.

The drive is modeled at the level that matters for the paper's results:
positioning cost (seek + rotational latency) versus streaming transfer.
The paper's cluster uses 7200 RPM 2 TB SATA drives; the default geometry
matches that class of device.

An I/O that starts exactly where the head currently rests is *sequential*
and pays only transfer time.  Any other I/O pays a seek whose duration
grows with the square root of the byte distance travelled (the standard
first-order approximation of arm movement) plus half a rotation of
latency.  The disk serializes I/O through a FIFO :class:`Resource`, so
concurrent writers naturally interleave and "ping-pong" the head exactly
as described in the paper's Section 5.

Data content is *not* stored here -- the disk is pure timing.  Byte
payloads live in :mod:`repro.storage` stores owned by the DataNode layer,
which keeps functional correctness (real XOR parity, bit-exact recovery)
separate from timing fidelity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro import units
from repro.errors import DiskFailedError, SimulationError
from repro.sim.engine import Event, Simulator
from repro.sim.resources import ElevatorResource, Resource
from repro.sim.stats import Histogram, TimeWeightedGauge
from repro.sim.snapshot import InlineState


@dataclass(frozen=True)
class DiskGeometry(InlineState):
    """Timing parameters of a spinning drive.

    Defaults approximate a 7200 RPM 2 TB SATA drive of the paper's era:
    ~0.5 ms minimum (track-to-track) seek, ~8.5 ms average seek, ~16 ms
    full-stroke seek, 4.17 ms average rotational latency (half of a
    7200 RPM revolution), and ~140 MB/s sustained media rate.
    """

    capacity: int = 2 * units.TB
    seek_min: float = 0.5 * units.MSEC
    seek_avg: float = 8.5 * units.MSEC
    seek_full: float = 16.0 * units.MSEC
    rotational_latency: float = 4.17 * units.MSEC
    transfer_rate: float = 140 * units.MB  # bytes/second
    # I/Os within this distance of the head are treated as near-sequential
    # (settle only, no rotational loss): models track-buffer readahead and
    # the paper's "write scheduled immediately after its related read"
    # reduced-rotational-delay case.
    near_threshold: int = 2 * units.MiB

    def seek_time(self, distance: int) -> float:
        """Seek duration for a head movement of ``distance`` bytes."""
        if distance <= 0:
            return 0.0
        if distance <= self.near_threshold:
            return self.seek_min
        # Square-root interpolation between the average seek (at 1/3 of a
        # full stroke, the expected random-seek distance) and the full
        # stroke, anchored at the minimum seek for short hops.
        frac = min(distance / self.capacity, 1.0)
        span = self.seek_full - self.seek_min
        return self.seek_min + span * math.sqrt(frac)

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.transfer_rate


def ssd_geometry(
    capacity: int = 2 * units.TB, transfer_rate: float = 520 * units.MB
) -> DiskGeometry:
    """A SATA-SSD-class geometry (paper §8's media what-if).

    No mechanical positioning: "seeks" collapse to a ~60 us command
    latency and there is no rotational delay, so random I/O costs almost
    the same as sequential -- which is exactly why the paper expects
    RAIDP's random-I/O penalties to shrink on flash.
    """
    return DiskGeometry(
        capacity=capacity,
        seek_min=60 * units.USEC,
        seek_avg=60 * units.USEC,
        seek_full=60 * units.USEC,
        rotational_latency=0.0,
        transfer_rate=transfer_rate,
        near_threshold=0,
    )


@dataclass
class DiskStats(InlineState):
    """Cumulative I/O accounting for one disk."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    seek_seconds: float = 0.0
    busy_seconds: float = 0.0
    syncs: int = 0

    @property
    def ios(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def snapshot(self) -> "DiskStats":
        return DiskStats(
            reads=self.reads,
            writes=self.writes,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            seeks=self.seeks,
            seek_seconds=self.seek_seconds,
            busy_seconds=self.busy_seconds,
            syncs=self.syncs,
        )


class Disk(InlineState):
    """One simulated drive: a head position, a FIFO queue, and stats."""

    def __init__(
        self,
        sim: Simulator,
        geometry: Optional[DiskGeometry] = None,
        name: str = "disk",
        scheduler: str = "fifo",
    ) -> None:
        if scheduler not in ("fifo", "elevator"):
            raise ValueError(f"unknown disk scheduler {scheduler!r}")
        self.sim = sim
        self.geometry = geometry or DiskGeometry()
        self.name = name
        self.scheduler = scheduler
        self.head = 0  # byte offset the head currently rests at
        self.failed = False
        self.stats = DiskStats()
        # Live metrics the registry snapshots: queue depth over time and
        # end-to-end I/O latency (queueing included).
        self.queue_gauge = TimeWeightedGauge(start_time=sim.now)
        self.io_latency = Histogram(bounds=(0.001, 0.005, 0.02, 0.1, 0.5, 2.0))
        self._elevator = scheduler == "elevator"
        if self._elevator:
            self._queue = ElevatorResource(sim, name=f"{name}.queue")
        else:
            self._queue = Resource(sim, capacity=1, name=f"{name}.queue")

    def audit_state(self) -> List[str]:
        """Internal-consistency problems, as strings (empty = healthy).

        Read-only: probed by the flight-recorder auditor at sample
        points.  Latency samples are recorded at I/O completion, so
        in-flight operations may lag the histogram -- the check is an
        inequality, never an exact match.
        """
        problems: List[str] = []
        depth = self.queue_gauge.current
        if depth < 0:
            problems.append(f"disk {self.name}: negative queue depth {depth}")
        completed = self.stats.ios + self.stats.syncs
        if self.io_latency.total > completed:
            problems.append(
                f"disk {self.name}: {self.io_latency.total} latency samples "
                f"exceed {completed} completed operations"
            )
        if self.stats.bytes_read < 0 or self.stats.bytes_written < 0:
            problems.append(f"disk {self.name}: negative byte accounting")
        return problems

    def _enqueue(self, offset: int) -> Event:
        """Queue an I/O; the elevator orders waiters by target offset."""
        if self.scheduler == "elevator":
            return self._queue.request(offset)
        return self._queue.request()

    # ------------------------------------------------------------------
    # Failure injection.
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the disk failed; all subsequent I/O raises."""
        self.failed = True

    def repair(self) -> None:
        """Bring a (replaced) disk back; its content is gone, head at 0."""
        self.failed = False
        self.head = 0

    def _check_alive(self) -> None:
        if self.failed:
            raise DiskFailedError(f"I/O on failed disk {self.name}")

    # ------------------------------------------------------------------
    # I/O.  These are process bodies: drive them with ``yield from``.
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int) -> Generator:
        """Read ``nbytes`` at ``offset``; returns the I/O duration."""
        return self._io("read", offset, nbytes)

    def write(self, offset: int, nbytes: int) -> Generator:
        """Write ``nbytes`` at ``offset``; returns the I/O duration."""
        return self._io("write", offset, nbytes)

    def sync(self) -> Generator:
        """Flush the write cache: a cache-flush barrier.

        Costs a settle plus half a rotation -- the media must commit the
        in-flight sectors before the barrier completes, which is why
        sync-per-packet workloads collapse (paper Fig. 8, unoptimized).
        """
        self._check_alive()
        sim = self.sim
        t0 = sim.now
        self.queue_gauge.adjust(1.0, t0)
        try:
            grant = yield self._enqueue(self.head)
        except BaseException:
            self.queue_gauge.adjust(-1.0, sim.now)
            raise
        try:
            self._check_alive()
            delay = self.geometry.seek_min + self.geometry.rotational_latency
            yield sim.sleep(delay)
            self.stats.syncs += 1
            self.stats.busy_seconds += delay
        finally:
            now = sim.now
            self.queue_gauge.adjust(-1.0, now)
            self.io_latency.observe(now - t0)
            self._queue.release(grant)
        trace = sim.trace
        if trace.enabled:
            trace.complete("disk", "sync", t0, sim.now, disk=self.name)
        return None

    def read_modify_write(
        self, offset: int, nbytes: int, read_bytes: Optional[int] = None
    ) -> Generator:
        """Read a region and immediately rewrite it, atomically queued.

        Models the paper's §3.2 scheduling: the write is issued right
        after its related read with no intervening I/O, so the rewrite
        pays only a short settle instead of a full seek + rotation.
        ``read_bytes`` (default: all of ``nbytes``) is how much of the
        old data actually reaches the media -- the rest is served from
        cache.  Returns the combined duration.
        """
        if offset < 0 or nbytes < 0 or offset + nbytes > self.geometry.capacity:
            raise ValueError(
                f"rmw outside disk {self.name}: offset={offset} nbytes={nbytes}"
            )
        if read_bytes is None:
            read_bytes = nbytes
        if not 0 <= read_bytes <= nbytes:
            raise ValueError(f"read_bytes {read_bytes} outside [0, {nbytes}]")
        self._check_alive()
        sim = self.sim
        t0 = sim.now
        self.queue_gauge.adjust(1.0, t0)
        try:
            if self._elevator:
                grant = yield self._queue.request(offset)
            else:
                grant = yield self._queue.request()
        except BaseException:
            self.queue_gauge.adjust(-1.0, sim.now)
            raise
        try:
            self._check_alive()
            duration = self._charge("read", offset, read_bytes)
            # Rewrite of the just-read region: reduced rotational delay.
            settle = self.geometry.seek_min + self.geometry.rotational_latency / 2
            duration += settle + self.geometry.transfer_time(nbytes)
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
            self.stats.busy_seconds += settle + self.geometry.transfer_time(nbytes)
            self.head = offset + nbytes
            yield sim.sleep(duration)
            self._check_alive()
        finally:
            now = sim.now
            self.queue_gauge.adjust(-1.0, now)
            self.io_latency.observe(now - t0)
            self._queue.release(grant)
        trace = sim.trace
        if trace.enabled:
            trace.complete("disk", "rmw", t0, sim.now, disk=self.name, bytes=nbytes)
        return duration

    def _io(self, kind: str, offset: int, nbytes: int) -> Generator:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.geometry.capacity:
            raise ValueError(
                f"{kind} outside disk {self.name}: offset={offset} nbytes={nbytes}"
            )
        # _check_alive() inlined throughout: this body runs once per
        # simulated I/O and the failure flag is a plain attribute.
        if self.failed:
            raise DiskFailedError(f"I/O on failed disk {self.name}")
        sim = self.sim
        queue_gauge = self.queue_gauge
        t0 = sim.now
        queue_gauge.adjust(1.0, t0)
        try:
            # _enqueue inlined: one I/O per call makes the extra method
            # frame measurable in the recovery chunk loops.
            if self._elevator:
                grant = yield self._queue.request(offset)
            else:
                grant = yield self._queue.request()
        except BaseException:
            queue_gauge.adjust(-1.0, sim.now)
            raise
        try:
            if self.failed:
                raise DiskFailedError(f"I/O on failed disk {self.name}")
            duration = self._charge(kind, offset, nbytes)
            yield sim.sleep(duration)
            if self.failed:
                raise DiskFailedError(f"I/O on failed disk {self.name}")
        finally:
            now = sim.now
            queue_gauge.adjust(-1.0, now)
            self.io_latency.observe(now - t0)
            self._queue.release(grant)
        trace = sim.trace
        if trace.enabled:
            trace.complete("disk", kind, t0, sim.now, disk=self.name, bytes=nbytes)
        return duration

    def stream_io(self, kind: str, offset: int, nbytes: int) -> float:
        """Charge an uncontended I/O and return its duration (no yields).

        The fast path for disks with exactly one sequential client -- the
        RAID-6 rig's per-survivor source streams and per-replacement
        writeback streams -- where the FIFO queue is provably idle at
        every request, so the grant/release round-trip (a process wrapper
        plus three schedule entries per I/O) adds zero simulated time.
        The caller waits out the returned duration itself (e.g. inside an
        ``all_of`` with an overlapping network flow).

        Timing, head movement, stats, queue gauge, latency histogram and
        the trace span are identical to driving :meth:`read`/:meth:`write`
        through the idle queue (``tests/test_sim_disk.py`` checks the
        equivalence); a busy queue raises instead of silently jumping it.
        """
        if offset < 0 or nbytes < 0 or offset + nbytes > self.geometry.capacity:
            raise ValueError(
                f"{kind} outside disk {self.name}: offset={offset} nbytes={nbytes}"
            )
        if self.failed:
            raise DiskFailedError(f"I/O on failed disk {self.name}")
        if self._queue._in_use or self._queue.queue_length:
            raise SimulationError(
                f"stream_io on busy disk {self.name}: the uncontended fast "
                "path requires an idle queue"
            )
        t0 = self.sim.now
        duration = self._charge(kind, offset, nbytes)
        gauge = self.queue_gauge
        gauge.adjust(1.0, t0)
        gauge.adjust(-1.0, t0 + duration)
        self.io_latency.observe(duration)
        trace = self.sim.trace
        if trace.enabled:
            trace.complete(
                "disk", kind, t0, t0 + duration, disk=self.name, bytes=nbytes
            )
        return duration

    def _charge(self, kind: str, offset: int, nbytes: int) -> float:
        """Compute the I/O duration and update head position and stats."""
        geometry = self.geometry
        distance = abs(offset - self.head)
        duration = geometry.transfer_time(nbytes)
        if distance != 0:
            seek = geometry.seek_time(distance)
            if distance > geometry.near_threshold:
                seek += geometry.rotational_latency
            duration += seek
            self.stats.seeks += 1
            self.stats.seek_seconds += seek
        self.head = offset + nbytes
        if kind == "read":
            self.stats.reads += 1
            self.stats.bytes_read += nbytes
        else:
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        self.stats.busy_seconds += duration
        return duration

    def estimate(self, offset: int, nbytes: int) -> float:
        """Duration the next I/O *would* take, without performing it."""
        geometry = self.geometry
        distance = abs(offset - self.head)
        duration = geometry.transfer_time(nbytes)
        if distance != 0:
            duration += geometry.seek_time(distance)
            if distance > geometry.near_threshold:
                duration += geometry.rotational_latency
        return duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "FAILED" if self.failed else "ok"
        return f"<Disk {self.name} {state} head={self.head} ios={self.stats.ios}>"
