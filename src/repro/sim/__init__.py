"""Deterministic discrete-event simulation substrate.

The paper evaluates RAIDP on a 16-node cluster of spinning disks and
ethernet NICs.  This package replaces that testbed with a seedable,
deterministic discrete-event simulator:

- :mod:`repro.sim.engine` -- event heap, generator-based processes,
  timeouts, and composite events (a minimal simpy-like kernel).
- :mod:`repro.sim.resources` -- FIFO resources, locks, and byte-range
  locks used to model disk serialization and reconstruction locking.
- :mod:`repro.sim.disk` -- a mechanical hard-drive model with seek,
  rotational, and transfer components plus failure injection.
- :mod:`repro.sim.network` -- max-min fair-share links, NICs, and a
  star-topology switch with per-node traffic accounting.
- :mod:`repro.sim.node` / :mod:`repro.sim.cluster` -- servers that bundle
  CPU, RAM, disks and NICs, and a cluster topology builder.
- :mod:`repro.sim.stats` -- counters and time-series gathering.
"""

from repro.sim.engine import AllOf, AnyOf, Event, Process, Simulator, Timeout
from repro.sim.resources import ByteRangeLock, Lock, Resource
from repro.sim.disk import Disk, DiskGeometry, DiskStats
from repro.sim.network import Nic, Switch, FlowStats
from repro.sim.node import Node, CpuModel
from repro.sim.cluster import Cluster, ClusterSpec

__all__ = [
    "AllOf",
    "AnyOf",
    "ByteRangeLock",
    "Cluster",
    "ClusterSpec",
    "CpuModel",
    "Disk",
    "DiskGeometry",
    "DiskStats",
    "Event",
    "FlowStats",
    "Lock",
    "Nic",
    "Node",
    "Process",
    "Resource",
    "Simulator",
    "Switch",
    "Timeout",
]
