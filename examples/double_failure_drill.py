#!/usr/bin/env python3
"""Double-failure drill: lose two disks, recover the shared superchunk.

This is the paper's headline capability (§3.3, §6.4): two disks fail
simultaneously, both copies of their shared superchunk are gone, and the
data comes back bit-for-bit from an Lstor's XOR parity plus the surviving
mirrors.  Runs with real bytes so the recovered content is compared
byte-for-byte against the originals.

Run:  python examples/double_failure_drill.py
"""

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def main() -> None:
    # A sparse layout (3 superchunks per disk, not the N-1 maximum)
    # leaves the re-mirroring headroom recovery needs.
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=3,
        payload_mode="bytes",
    )

    def workload():
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/data/file{index}", 3 * units.MiB)

    dfs.sim.run_process(workload())
    dfs.verify_parity()

    # Pick two disks that share a superchunk; snapshot what will be lost.
    victim_a, victim_b = next(
        (a, b)
        for a in dfs.layout.disks
        for b in dfs.layout.disks
        if a < b and dfs.layout.shared(a, b) is not None
    )
    shared = dfs.layout.shared(victim_a, victim_b)
    originals = {
        name: dfs.datanode_by_name(victim_a).content_of(name)
        for name in dfs.map.blocks_in(shared).values()
        if dfs.datanode_by_name(victim_a).has_block(name)
    }
    print(
        f"failing disks {victim_a} and {victim_b}; superchunk {shared} "
        f"({len(originals)} blocks) loses both copies"
    )

    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(
        victim_a,
        victim_b,
        options=RecoveryOptions(lock_mode="byte_range", chunk_size=units.MiB),
    )
    print(
        f"recovered superchunk {report.reconstructed_sc} and re-mirrored "
        f"{len(report.remirrored)} superchunks in "
        f"{units.format_duration(report.duration)} (simulated)"
    )

    # Verify every lost block byte-for-byte on its new homes.
    for name, original in originals.items():
        locations = next(
            loc for loc in dfs.namenode.all_blocks() if loc.block.name == name
        )
        live = [n for n in locations.datanodes if dfs.namenode.datanode(n).alive]
        assert len(live) >= 2, f"{name} is under-replicated after recovery"
        for node_name in live:
            recovered = dfs.datanode_by_name(node_name).content_of(name)
            assert recovered == original, f"bit rot in {name} on {node_name}"
    dfs.layout.verify()
    dfs.verify_mirrors()
    dfs.verify_parity()
    print("every lost block verified bit-for-bit; all invariants restored")


if __name__ == "__main__":
    main()
