#!/usr/bin/env python3
"""Stacked Lstors: k parities per disk tolerate k+1 simultaneous failures.

The paper's §3.3 extension: instead of one XOR Lstor, stack k Lstors per
disk holding Reed-Solomon parity rows over the disk's superchunks.  This
example builds a disk image with two stacked Lstors, erases *two*
superchunks of the same disk (the situation a triple disk failure can
create), and reconstructs both bit-for-bit.

Run:  python examples/stacked_lstors.py
"""

import numpy as np

from repro import units
from repro.core.lstor import LstorStack
from repro.sim.engine import Simulator
from repro.storage.payload import BytesPayload, ContentFactory


def main() -> None:
    sim = Simulator()
    factory = ContentFactory(mode="bytes")
    block_size = 256 * units.KiB
    superchunks = 6  # superchunks on this disk = RS data shards
    blocks_per_superchunk = 4

    stack = LstorStack(
        sim,
        factory,
        name="d0.lstors",
        block_size=block_size,
        data_shards=superchunks,
        parity_count=2,  # two stacked Lstors -> survives 3 disk failures
    )

    # Fill the disk: every superchunk gets content, parities absorb it.
    contents = {}
    for shard in range(superchunks):
        for slot in range(blocks_per_superchunk):
            payload = factory.make(f"sc{shard}-blk{slot}", 1, block_size)
            stack.absorb_update(
                shard, slot, factory.zero(block_size), payload
            )
            contents[(shard, slot)] = payload
    print(
        f"disk with {superchunks} superchunks x {blocks_per_superchunk} blocks, "
        f"{stack.parity_count} stacked Lstors"
    )

    # A triple failure can cost this disk two shared superchunks at once.
    lost = [1, 4]
    print(f"erasing superchunks {lost} (both copies gone cluster-wide)")
    for slot in range(blocks_per_superchunk):
        survivors = {
            shard: contents[(shard, slot)]
            for shard in range(superchunks)
            if shard not in lost
        }
        rebuilt = stack.reconstruct_block(slot, survivors, missing_shards=lost)
        for shard in lost:
            original = contents[(shard, slot)]
            assert isinstance(rebuilt[shard], BytesPayload)
            assert rebuilt[shard] == original, f"sc{shard} slot {slot} mismatch"
    print("both superchunks reconstructed bit-for-bit from the RS parities")

    # One Lstor of the stack may itself die: a single parity still covers
    # a single superchunk loss.
    stack.lstors[1].fail()
    for slot in range(blocks_per_superchunk):
        survivors = {
            shard: contents[(shard, slot)]
            for shard in range(superchunks)
            if shard != 2
        }
        rebuilt = stack.reconstruct_block(slot, survivors, missing_shards=[2])
        assert rebuilt[2] == contents[(2, slot)]
    print("with one Lstor dead, the surviving parity still recovers one loss")


if __name__ == "__main__":
    main()
