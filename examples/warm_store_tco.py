#!/usr/bin/env python3
"""TCO what-if: should your warm store drop the third replica?

Walks the paper's Section 4 economics for a configurable fleet: derived
per-disk cost, Lstor bill of materials, total-cost-of-ownership per
useful petabyte under triplication vs RAIDP, and where RAIDP sits in the
storage/repair design space (Fig. 1).

Run:  python examples/warm_store_tco.py
"""

from repro import units
from repro.analysis.cost import DatacenterCostModel, LstorBom, ServerExample
from repro.analysis.design_space import design_space_points


def main() -> None:
    # Describe a storage fleet: dense chassis, 16 TB disks.
    server = ServerExample(
        name="dense-jbod",
        server_cost=28_000.0,
        num_disks=60,
        disk_street_price=280.0,
    )
    print(f"fleet server: {server.name}")
    print(f"  direct disk cost:   ${server.direct_disk_cost:,.0f}")
    print(
        f"  derived disk cost:  ${server.derived_disk_cost:,.0f} "
        f"({server.derived_multiplier:.1f}x street price once the chassis, "
        "CPUs and NICs are amortized)"
    )

    # An Lstor sized for this fleet (16 TB disk / 1000-disk layout needs
    # ~16 GB of flash+DRAM; scale the BOM accordingly).
    lstor = LstorBom(flash_and_dram=36.0, microcontroller=5.0, supercap_and_enclosure=16.0)
    model = DatacenterCostModel(
        derived_disk_cost=server.derived_disk_cost, lstor=lstor
    )
    print(f"\nLstor BOM: ${lstor.total:.0f} "
          f"(vs ${server.derived_disk_cost:,.0f} for another derived disk)")

    disk_tb = 16
    for replication, lstors in ((3, 0), (2, 1)):
        tco = model.tco_per_useful_disk(replication, lstors_per_disk=lstors)
        per_pb = tco * 1000 / disk_tb
        scheme = "triplication" if replication == 3 else "RAIDP (2 replicas + Lstor)"
        print(f"  {scheme:<28} ${per_pb:,.0f} per useful PB")
    print(
        f"RAIDP saves {model.raidp_savings_fraction():.1%} of disk-proportional "
        "TCO (bound: 33.3%)"
    )

    print("\nDesign space (Fig. 1), 1000-disk deployment:")
    for point in design_space_points(n=10, superchunks_per_disk=999):
        print(f"  {point.row()}")


if __name__ == "__main__":
    main()
