#!/usr/bin/env python3
"""Quickstart: build a RAIDP cluster, write data, inspect the layout.

Builds a 7-node RAIDP deployment (the paper's Fig. 3 shape), writes a few
files through the DFS client, prints the superchunk layout and Lstor
state, and verifies the mirror and parity invariants.

Run:  python examples/quickstart.py
"""

from repro import units
from repro.core.cluster import RaidpCluster
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def main() -> None:
    # A small cluster with MB-scale geometry so real bytes are cheap.
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=7),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        payload_mode="bytes",  # real data: parity is bit-exact
    )

    print("Superchunk layout (columns = disks, rows = slots, cf. Fig. 3):")
    print(dfs.layout.render())
    print()

    # Write three files through ordinary DFS clients.
    def workload():
        yield from dfs.client(0).write_file("/warm/events.log", 5 * units.MiB)
        yield from dfs.client(1).write_file("/warm/blobs.bin", 3 * units.MiB)
        yield from dfs.client(2).write_file("/warm/index.db", 2 * units.MiB)

    dfs.sim.run_process(workload())
    print(f"wrote 3 files in {units.format_duration(dfs.sim.now)} (simulated)")
    print(f"network moved: {units.format_size(dfs.total_network_bytes())}")

    # Every block landed on a superchunk-sharing pair of DataNodes.
    for path in dfs.namenode.list_files():
        for block in dfs.namenode.file_blocks(path):
            loc = dfs.namenode.locate_block(block.block_id)
            print(
                f"  {path} {block.name}: superchunk {loc.sc_id} slot {loc.slot} "
                f"on {loc.datanodes}"
            )

    # The invariants the whole design rests on.
    dfs.verify_mirrors()
    dfs.verify_parity()
    assert dfs.journals_empty()
    print("invariants hold: mirrors identical, Lstor parity exact, journals clear")


if __name__ == "__main__":
    main()
