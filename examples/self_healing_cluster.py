#!/usr/bin/env python3
"""Self-healing cluster: heartbeats, detection, automatic Lstor recovery.

Runs a RAIDP cluster with the monitor attached, kills two disks that
share a superchunk mid-run, and watches the cluster detect the failures
via missed heartbeats, reconstruct the doubly-lost superchunk from an
Lstor, re-mirror everything else, and return to full health -- with the
workload's data verified bit-for-bit afterwards.

Run:  python examples/self_healing_cluster.py
"""

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.monitor import ClusterMonitor, MonitorConfig
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def main() -> None:
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=3,  # headroom for re-mirroring
        payload_mode="bytes",
    )

    def workload():
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/data/file{index}", 3 * units.MiB)

    dfs.sim.run_process(workload())
    originals = {
        loc.block.name: dfs.datanode_by_name(loc.datanodes[0]).content_of(
            loc.block.name
        )
        for loc in dfs.namenode.all_blocks()
    }

    victim_a, victim_b = next(
        (a, b)
        for a in dfs.layout.disks
        for b in dfs.layout.disks
        if a < b and dfs.layout.shared(a, b) is not None
    )
    monitor = ClusterMonitor(dfs, MonitorConfig(heartbeat_interval=3.0, dead_after=12.0))
    monitor.start()

    def disaster():
        yield dfs.sim.timeout(10.0)
        print(f"t={dfs.sim.now:5.1f}s  disks {victim_a} and {victim_b} fail silently")
        dfs.datanode_by_name(victim_a).disk.fail()
        dfs.datanode_by_name(victim_b).disk.fail()
        yield dfs.sim.timeout(120.0)

    scenario = dfs.sim.process(disaster(), name="disaster")
    dfs.sim.run(until=180.0)
    assert scenario.triggered
    monitor.stop()
    dfs.sim.run()

    for when, names in monitor.detected:
        print(f"t={when:5.1f}s  monitor detected dead: {', '.join(names)}")
    for report in monitor.reports:
        what = (
            f"reconstructed superchunk {report.reconstructed_sc} and "
            if report.reconstructed_sc is not None
            else ""
        )
        print(
            f"         recovery: {what}re-mirrored {len(report.remirrored)} "
            f"superchunks in {units.format_duration(report.duration)}"
        )

    # Full health: invariants and every byte of every block.
    dfs.layout.verify()
    assert dfs.layout.is_fully_mirrored
    dfs.verify_mirrors()
    dfs.verify_parity()
    survivors = 0
    for loc in dfs.namenode.all_blocks():
        live = [n for n in loc.datanodes if dfs.namenode.datanode(n).alive]
        assert len(live) >= 2
        for node in live:
            assert dfs.datanode_by_name(node).content_of(loc.block.name) == originals[
                loc.block.name
            ]
            survivors += 1
    print(f"cluster healed itself: {survivors} replicas verified bit-for-bit")


if __name__ == "__main__":
    main()
