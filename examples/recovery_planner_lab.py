#!/usr/bin/env python3
"""Recovery planner lab: greedy vs dynamic-Hungarian re-replication.

Section 3.3 frames post-failure re-mirroring as a matching problem:
senders (disks holding now-unique superchunks) must be paired with
receivers without violating 1-sharing, without mutual exchanges, and with
balanced load.  This example fails a disk, runs both planners, and prints
the plans and the resulting load spread.

Run:  python examples/recovery_planner_lab.py
"""

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def build_loaded_cluster() -> RaidpCluster:
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=10),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=4,  # sparse: recovery headroom exists
        payload_mode="tokens",
    )

    def workload():
        # Uneven load: early clients write more.
        for index, client in enumerate(dfs.clients):
            size = (3 if index < 4 else 1) * units.MiB
            yield from client.write_file(f"/load/file{index}", size)

    dfs.sim.run_process(workload())
    return dfs


def main() -> None:
    for planner in ("greedy", "hungarian"):
        dfs = build_loaded_cluster()
        manager = RecoveryManager(dfs)
        victim = "n0"
        report = manager.recover_single_failure(
            victim, RecoveryOptions(planner=planner)
        )
        print(f"planner={planner}: disk {victim} failed, plan:")
        for sc_id, sender, receiver in report.remirrored:
            print(f"  superchunk {sc_id}: {sender} -> {receiver}")
        loads = sorted(
            (dfs.map.load_of_disk(dn.name), dn.name)
            for dn in dfs.datanodes
            if dn.alive
        )
        spread = loads[-1][0] - loads[0][0]
        print(
            f"  recovery took {units.format_duration(report.duration)} "
            f"(simulated); load spread {spread} blocks "
            f"(min {loads[0]}, max {loads[-1]})"
        )
        dfs.layout.verify()
        assert dfs.layout.is_fully_mirrored
        print("  1-sharing and 1-mirroring verified after recovery\n")


if __name__ == "__main__":
    main()
