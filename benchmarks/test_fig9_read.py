"""Bench: regenerate Fig. 9 and assert reads are configuration-blind."""

from conftest import rows_by_label

from repro.experiments.fig9_read import run


def test_fig9_read_performance(benchmark, run_once):
    result = run_once(benchmark, run)
    rows = rows_by_label(result)
    # Every configuration reads within ~10% of HDFS-3 (paper: 0.96-1.03).
    for label, measured in rows.items():
        assert 0.85 < measured < 1.15, f"{label} read ratio {measured}"
