#!/usr/bin/env python
"""Standalone perf-report entry point.

Thin wrapper over :mod:`repro.tools.bench` so the harness can be run
straight from a checkout::

    python benchmarks/perf_report.py --compare-jobs 1,4

Equivalent to ``python -m repro.tools.bench`` with ``src/`` on the path.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.tools.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
