"""Bench: regenerate Fig. 8 and assert every ordering the paper shows."""

import pytest
from conftest import rows_by_label

from repro.experiments.fig8_write import run


def test_fig8_write_performance(benchmark, run_once):
    result = run_once(benchmark, run)
    rows = rows_by_label(result)

    h2 = rows["hdfs 2 replicas"]
    sc = rows["raidp opt: only superchunks"]
    lstor = rows["raidp opt: +lstor"]
    journal = rows["raidp opt: +journal"]

    # Two replicas beat three by roughly the capacity ratio.
    assert 0.6 < h2 < 0.75
    # Optimized superchunks-only performs on par with (or slightly better
    # than) HDFS-2 -- the optimizations eliminate the layout overhead.
    assert sc <= h2 + 0.02
    # Parity and journal each add a small increment, still below HDFS-3.
    assert sc < lstor < journal < 1.0
    assert lstor - sc < 0.15
    assert journal - lstor < 0.15

    # Re-write variant: read-modify-write costs real time but stays well
    # below the 33% bound over HDFS-3 (the paper measures 21%).
    rw = rows["raidp re-write: +journal"]
    assert 1.05 < rw < 1.33
    # Without parity there is nothing to read-modify-write: the re-write
    # superchunks-only bar matches the base variant.
    assert rows["raidp re-write: only superchunks"] == pytest.approx(sc, abs=0.05)

    # Unoptimized: noticeable slowdown without the journal, catastrophic
    # (the paper's off-the-chart 22x) with per-packet journal syncs.
    un_sc = rows["raidp unopt: only superchunks"]
    un_journal = rows["raidp unopt: +journal"]
    assert 1.2 < un_sc < 2.5
    assert un_journal > 10.0
