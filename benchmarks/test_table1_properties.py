"""Bench: regenerate Table 1 and assert the headline ratings."""

from conftest import rows_by_label

from repro.experiments.table1_properties import run

BEST, MID, WORST = 1.0, 0.0, -1.0


def test_table1_property_matrix(benchmark, run_once):
    result = run_once(benchmark, run)
    rows = rows_by_label(result)
    # RAIDP's wins: sub-stripe write network, degraded reads, single-
    # failure repair, disk sequentiality.
    assert rows["write network: sub-stripe [raidp]"] == BEST
    assert rows["degraded read [raidp]"] == BEST
    assert rows["repair traffic: single failure [raidp]"] == BEST
    assert rows["disk sequentiality [raidp]"] == BEST
    # RAIDP's two bolded losses: multi-block disk writes, failure domains.
    assert rows["write disk: multi-block [raidp]"] == WORST
    assert rows["failure domain tolerance [raidp]"] == WORST
    # Capacity: erasure best, triplication worst, RAIDP between.
    assert rows["storage capacity [ec]"] == BEST
    assert rows["storage capacity [3rep]"] == WORST
    assert rows["storage capacity [raidp]"] == MID
    # Erasure coding's repair-traffic weakness.
    assert rows["repair traffic: single failure [ec]"] == WORST
    assert rows["repair traffic: dual failure [ec]"] == WORST
