"""Bench: regenerate Fig. 1 and assert the middle-point shape."""

from conftest import rows_by_label

from repro.experiments.fig1_design_space import run


def test_fig1_design_space(benchmark, run_once):
    result = run_once(benchmark, run)
    rows = rows_by_label(result)
    # Storage efficiency: triplication < raidp < erasure.
    assert (
        rows["triplication: storage"]
        < rows["raidp: storage"]
        < rows["erasure: storage"]
    )
    # Single-failure repair: raidp matches replication's ideal.
    assert rows["raidp: repair (1 failure)"] == rows["triplication: repair (1 failure)"]
    # Double-failure repair: raidp between erasure and replication.
    assert (
        rows["erasure: repair (2 failures)"]
        < rows["raidp: repair (2 failures)"]
        <= rows["triplication: repair (2 failures)"]
    )
    assert "middle-point property holds" in result.notes
