"""Bench: regenerate Fig. 10 and assert the four workloads' deltas."""

from conftest import rows_by_label

from repro.experiments.fig10_benchmarks import run


def test_fig10_benchmark_suite(benchmark, run_once):
    result = run_once(benchmark, run)
    rows = rows_by_label(result)

    # Write: RAIDP clearly faster, network halved.
    assert -0.35 < rows["write: runtime delta"] < -0.10
    assert abs(rows["write: network delta"] - (-0.50)) < 0.05

    # TeraSort: smaller runtime win (read+CPU dilute the write savings),
    # DFS-layer network halved like writing.
    assert -0.20 < rows["terasort: runtime delta"] < 0.0
    assert rows["terasort: runtime delta"] > rows["write: runtime delta"]
    assert abs(rows["terasort: network delta"] - (-0.50)) < 0.10

    # WordCount: CPU-bound, runtimes nearly identical.
    assert abs(rows["wordcount: runtime delta"]) < 0.10

    # Read: near parity (paper +3% with an 8% stddev; direction varies
    # with placement seeds).
    assert abs(rows["read: runtime delta"]) < 0.15
    assert abs(rows["read: network delta"]) < 0.15
