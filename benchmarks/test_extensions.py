"""Benches for the beyond-the-paper extension experiments."""

from conftest import rows_by_label

from repro.experiments.ext_durability import run as run_durability
from repro.experiments.ext_ssd import run as run_ssd
from repro.experiments.ext_updates import run as run_updates


def test_ext_durability(benchmark, run_once):
    result = run_once(benchmark, run_durability)
    rows = rows_by_label(result)
    # Analytic ladder: rep2 << raidp == rep3 << raidp(2 lstors).
    assert rows["analytic MTTDL [rep2] (years)"] < rows["analytic MTTDL [raidp] (years)"]
    assert rows["analytic MTTDL [raidp] (years)"] == rows["analytic MTTDL [rep3] (years)"]
    assert (
        rows["analytic MTTDL [raidp(2 lstors)] (years)"]
        > rows["analytic MTTDL [raidp] (years)"]
    )
    # Monte-Carlo: RAIDP's durability in triplication's class...
    assert rows["P(data loss) [raidp]"] <= rows["P(data loss) [rep2]"] / 2
    # ...but availability worse than triplication (the §2 trade).
    assert rows["P(unavailable) [raidp]"] >= rows["P(unavailable) [rep3]"]


def test_ext_updates(benchmark, run_once):
    result = run_once(benchmark, run_updates)
    rows = rows_by_label(result)
    assert rows["runtime speedup (rewrite / in-place)"] > 1.5
    assert (
        rows["disk bytes written [in_place] (GiB)"]
        < rows["disk bytes written [rewrite] (GiB)"]
    )
    assert rows["trace update amplification (x)"] > 10


def test_ext_ssd(benchmark, run_once):
    result = run_once(benchmark, run_ssd)
    rows = rows_by_label(result)
    # The unoptimized layout's ping-pong penalty collapses on flash.
    assert (
        rows["raidp unopt only-superchunks [SSD]"]
        < rows["raidp unopt only-superchunks [HDD]"] / 1.5
    )
    # The re-write variant settles near the per-disk transfer bound (2x).
    assert 1.5 < rows["raidp re-write +journal [SSD]"] < 2.3
