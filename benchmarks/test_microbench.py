"""Microbenchmarks of the substrates (classic pytest-benchmark usage).

These track the raw speed of the building blocks -- useful when tuning
the simulator, and a regression canary for the vectorized GF(256) paths.
"""

import numpy as np
import pytest

from repro import units
from repro.ec.gf256 import GF256
from repro.ec.raid6 import pq_encode, pq_recover_two_data
from repro.ec.reed_solomon import ReedSolomon
from repro.matching.hungarian import hungarian
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.sim.engine import Simulator
from repro.storage.payload import BytesPayload


def test_bench_gf256_addmul(benchmark):
    rng = np.random.default_rng(1)
    accum = np.zeros(units.MiB, dtype=np.uint8)
    data = rng.integers(0, 256, size=units.MiB, dtype=np.uint8)
    benchmark(GF256.addmul_bytes, accum, 0x57, data)


def test_bench_rs_encode(benchmark):
    rs = ReedSolomon(10, 2)
    rng = np.random.default_rng(2)
    shards = [rng.integers(0, 256, size=256 * units.KiB, dtype=np.uint8) for _ in range(10)]
    parities = benchmark(rs.encode, shards)
    assert len(parities) == 2


def test_bench_rs_decode_two_erasures(benchmark):
    rs = ReedSolomon(10, 2)
    rng = np.random.default_rng(3)
    data = [rng.integers(0, 256, size=64 * units.KiB, dtype=np.uint8) for _ in range(10)]
    parity = rs.encode(data)
    shards = {i: s for i, s in enumerate(data) if i not in (2, 7)}
    shards[10], shards[11] = parity
    decoded = benchmark(rs.decode, shards)
    assert np.array_equal(decoded[2], data[2])


def test_bench_raid6_double_recovery(benchmark):
    rng = np.random.default_rng(4)
    data = [rng.integers(0, 256, size=units.MiB, dtype=np.uint8) for _ in range(8)]
    p, q = pq_encode(data)
    survivors = {i: d for i, d in enumerate(data) if i not in (1, 5)}
    d1, d5 = benchmark(pq_recover_two_data, survivors, 1, 5, p, q)
    assert np.array_equal(d1, data[1])
    assert np.array_equal(d5, data[5])


def test_bench_payload_xor_allocating(benchmark):
    """The old path: every XOR allocates a fresh payload."""
    rng = np.random.default_rng(21)
    a = BytesPayload(rng.integers(0, 256, size=units.MiB, dtype=np.uint8))
    b = BytesPayload(rng.integers(0, 256, size=units.MiB, dtype=np.uint8))
    result = benchmark(a.xor, b)
    assert len(result) == units.MiB


def test_bench_payload_xor_into(benchmark):
    """The copy-free accumulator path used by Lstor.absorb and recovery."""
    rng = np.random.default_rng(22)
    a = BytesPayload(rng.integers(0, 256, size=units.MiB, dtype=np.uint8))
    b = BytesPayload(rng.integers(0, 256, size=units.MiB, dtype=np.uint8))
    buf = a.mutable_copy()
    benchmark(b.xor_into, buf)
    assert len(buf) == units.MiB


def test_bench_payload_checksum_cached(benchmark):
    rng = np.random.default_rng(23)
    payload = BytesPayload(rng.integers(0, 256, size=units.MiB, dtype=np.uint8))
    payload.checksum()  # prime the cache; the benchmark measures hits
    crc = benchmark(payload.checksum)
    assert crc == payload.checksum()


def test_bench_sim_engine_event_throughput(benchmark):
    def run_events():
        sim = Simulator()

        def ticker():
            for _ in range(10_000):
                yield sim.timeout(0.001)

        sim.process(ticker())
        sim.run()
        return sim.now

    result = benchmark.pedantic(run_events, rounds=3, iterations=1)
    assert result == pytest.approx(10.0)


def test_bench_sim_engine_process_churn(benchmark):
    """Spawn-heavy pattern: many short-lived processes with one waiter
    each, exercising the deferred-bootstrap and single-callback fast
    paths."""

    def run_procs():
        sim = Simulator()

        def child():
            yield sim.timeout(0.5)
            return 1

        def parent():
            total = 0
            for _ in range(2_000):
                total += yield sim.process(child())
            return total

        return sim.run_process(parent())

    result = benchmark.pedantic(run_procs, rounds=3, iterations=1)
    assert result == 2_000


def test_bench_network_solver_churn(benchmark):
    """Incremental fair-share solver under a 512-flow churn burst."""
    from repro.tools.bench import run_network_churn

    def churn():
        elapsed, _events = run_network_churn("incremental", num_nics=64, num_flows=512)
        return elapsed

    benchmark.pedantic(churn, rounds=3, iterations=1)


def test_network_churn_event_budget():
    """Perf guard: a 512-flow churn burst stays within an event budget.

    The incremental solver's lazy completion heap must keep the engine
    event count proportional to arrivals/departures -- a handful of
    events per flow (arrival stagger, completion timer, delivery, done)
    plus re-arms -- never proportional to flows^2.  The budget of 16
    events/flow is ~2x the observed cost, so it trips on any return to
    per-event timer rebuilds long before wall-clock does.
    """
    from repro.tools.bench import run_network_churn

    num_flows = 512
    _elapsed, events = run_network_churn("incremental", num_nics=64, num_flows=num_flows)
    assert events <= 16 * num_flows + 64, (
        f"{events} engine events for {num_flows} flows: "
        "event count is no longer proportional to arrivals/departures"
    )


def test_bench_hungarian_50x50(benchmark):
    import random

    rng = random.Random(5)
    cost = [[rng.randint(1, 100) for _ in range(50)] for _ in range(50)]
    assignment, _total = benchmark(hungarian, cost)
    assert len(assignment) == 50


def test_bench_hopcroft_karp_dense(benchmark):
    import random

    rng = random.Random(6)
    graph = {
        f"L{i}": [f"R{j}" for j in range(100) if rng.random() < 0.2]
        for i in range(100)
    }
    matching = benchmark(hopcroft_karp, graph)
    assert len(matching) > 80
