"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one of the paper's tables or figures via
``pytest-benchmark`` (so wall-clock cost is tracked run over run) and
asserts the *shape* of the result: orderings, approximate ratios, and
crossovers.  Absolute simulated seconds are not compared to the paper's
testbed seconds.
"""

from __future__ import annotations

from typing import Dict

import pytest


def rows_by_label(result) -> Dict[str, float]:
    """Collapse an ExperimentResult's rows into {label: measured}."""
    return {label: measured for label, measured, _paper in result.rows}


@pytest.fixture
def run_once():
    """Run an experiment exactly once under the benchmark timer."""

    def runner(benchmark, experiment_fn, **kwargs):
        return benchmark.pedantic(
            lambda: experiment_fn(**kwargs), rounds=1, iterations=1
        )

    return runner
