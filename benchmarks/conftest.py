"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one of the paper's tables or figures via
``pytest-benchmark`` (so wall-clock cost is tracked run over run) and
asserts the *shape* of the result: orderings, approximate ratios, and
crossovers.  Absolute simulated seconds are not compared to the paper's
testbed seconds.

The experiment regenerations honour the same process fan-out as the CLI:
set ``RAIDP_JOBS=N`` to run each figure's independent sweep points on N
worker processes (results are bit-identical at any job count).
"""

from __future__ import annotations

import inspect
from typing import Dict

import pytest

from repro.experiments.parallel import resolve_jobs


def rows_by_label(result) -> Dict[str, float]:
    """Collapse an ExperimentResult's rows into {label: measured}."""
    return {label: measured for label, measured, _paper in result.rows}


@pytest.fixture(scope="session")
def experiment_jobs() -> int:
    """Worker-process fan-out for experiment regeneration (``RAIDP_JOBS``)."""
    return resolve_jobs(None)


@pytest.fixture
def run_once(experiment_jobs):
    """Run an experiment exactly once under the benchmark timer.

    Experiments that support process fan-out (a ``jobs`` parameter)
    automatically inherit the session's ``RAIDP_JOBS`` setting.
    """

    def runner(benchmark, experiment_fn, **kwargs):
        if "jobs" in inspect.signature(experiment_fn).parameters:
            kwargs.setdefault("jobs", experiment_jobs)
        return benchmark.pedantic(
            lambda: experiment_fn(**kwargs), rounds=1, iterations=1
        )

    return runner
