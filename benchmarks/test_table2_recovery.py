"""Bench: regenerate Table 2 and assert the recovery-time orderings."""

from conftest import rows_by_label

from repro.experiments.table2_recovery import run


def test_table2_recovery_runtimes(benchmark, run_once):
    result = run_once(benchmark, run)
    rows = rows_by_label(result)

    byte4 = rows["raidp byte_range 4MB @10Gbps"]
    byte64 = rows["raidp byte_range 64MB @10Gbps"]
    sc64 = rows["raidp superchunk 64MB @10Gbps"]
    sc4 = rows["raidp superchunk 4MB @10Gbps"]

    # The paper's @10Gbps ordering: byte/4MB < byte/64MB < sc/64MB < sc/4MB.
    assert byte4 < byte64 < sc64 < sc4
    # Spread roughly 125 -> 211 (a ~1.7x range).
    assert 1.4 < sc4 / byte4 < 2.2

    # At 1Gbps the network is the bottleneck: all RAIDP rows flatten into
    # a narrow band (the paper's 827-852s).
    one_gig = [v for k, v in rows.items() if k.startswith("raidp") and "@1Gbps" in k]
    assert max(one_gig) / min(one_gig) < 1.1
    # And the band sits far above the 10Gbps numbers.
    assert min(one_gig) > 3 * sc4

    # RAID-6 rebuilds entire disks: an order of magnitude slower.
    raid6_10g = rows["raid6 4MB @10Gbps"]
    raid6_1g = rows["raid6 4MB @1Gbps"]
    assert raid6_10g > 8 * byte4
    assert raid6_1g > 8 * rows["raidp byte_range 4MB @1Gbps"]
    # Larger chunks slow the RAID-6 decode too (cache effects).
    assert rows["raid6 64MB @10Gbps"] >= raid6_10g
