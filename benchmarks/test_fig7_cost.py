"""Bench: regenerate Fig. 7 / §4 cost analysis and assert its claims."""

import pytest
from conftest import rows_by_label

from repro.experiments.fig7_cost import run


def test_fig7_cost_analysis(benchmark, run_once):
    result = run_once(benchmark, run)
    rows = rows_by_label(result)
    # The Fig. 7 breakdown: servers dominate, overheads are ~43%.
    assert rows["TCO share: servers"] == pytest.approx(0.57)
    assert rows["infrastructure overhead fraction"] == pytest.approx(0.43)
    # A third disk costs ~66% more than two Lstors.
    assert rows["third disk vs two Lstors (x)"] == pytest.approx(1.66, rel=0.02)
    # Derived (server-attached) disk costs dwarf street prices.
    assert rows["hyper-converged derived disk cost ($)"] > 3000
    assert rows["supermicro derived-cost multiplier (x)"] > 2
    # RAIDP's TCO savings approach (but never exceed) the 1/3 bound.
    assert 0.30 < rows["RAIDP TCO savings fraction"] < 1 / 3
