"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism and shows the effect the paper
attributes to it: the writer lock, block accumulation, journal sync
granularity, the recovery planner, and the read-modify-write cache.
"""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec
from repro.workloads.dfsio import dfsio_write

DATASET = 2 * units.GiB
SPEC = ClusterSpec(num_nodes=16)


def raidp_runtime(**kwargs):
    dfs = RaidpCluster(
        spec=SPEC,
        config=DfsConfig(replication=2),
        raidp=RaidpConfig(**kwargs),
        payload_mode="tokens",
        seed=1,
    )
    return dfsio_write(dfs, DATASET).runtime


def test_ablation_accumulation_and_writer_lock(benchmark):
    """The §5 optimizations: accumulate + lock vs per-packet streaming."""

    def measure():
        return {
            "optimized": raidp_runtime(optimized=True),
            "unoptimized": raidp_runtime(optimized=False),
        }

    runtimes = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The paper's Fig. 8: packet-granularity journaling is catastrophic.
    assert runtimes["unoptimized"] > 5 * runtimes["optimized"]


def test_ablation_journal_overhead(benchmark):
    """Journal on/off under the optimized path: a small, bounded cost."""

    def measure():
        return {
            "journal": raidp_runtime(),
            "no_journal": raidp_runtime(enable_journal=False),
        }

    runtimes = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = runtimes["journal"] / runtimes["no_journal"] - 1
    assert 0.0 < overhead < 0.25


def test_ablation_parity_overhead(benchmark):
    """Lstor parity updates on/off: the +lstor increment of Fig. 8."""

    def measure():
        return {
            "parity": raidp_runtime(enable_journal=False),
            "no_parity": raidp_runtime(enable_parity=False, enable_journal=False),
        }

    runtimes = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = runtimes["parity"] / runtimes["no_parity"] - 1
    assert 0.0 < overhead < 0.25


def test_ablation_rmw_cache_sweep(benchmark):
    """The update-oriented penalty shrinks as old data caches better."""

    def measure():
        return [
            raidp_runtime(update_oriented=True, old_data_cache_fraction=fraction)
            for fraction in (0.0, 0.5, 1.0)
        ]

    cold, warm, hot = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert cold > warm > hot


def recovery_duration(planner):
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=12),
        config=DfsConfig(block_size=units.MiB, replication=2),
        raidp=RaidpConfig(),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=4,
        payload_mode="tokens",
        seed=1,
    )

    def writers():
        procs = [
            dfs.sim.process(c.write_file(f"/f{i}", 3 * units.MiB))
            for i, c in enumerate(dfs.clients)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(writers())
    manager = RecoveryManager(dfs)
    report = manager.recover_single_failure(
        "n0", RecoveryOptions(planner=planner)
    )
    loads = [dfs.map.load_of_disk(dn.name) for dn in dfs.datanodes if dn.alive]
    return report.duration, max(loads) - min(loads)


def test_ablation_recovery_planner(benchmark):
    """Hungarian vs greedy: both legal; Hungarian at least as balanced."""

    def measure():
        return {
            "greedy": recovery_duration("greedy"),
            "hungarian": recovery_duration("hungarian"),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    _greedy_time, greedy_imbalance = results["greedy"]
    _hung_time, hung_imbalance = results["hungarian"]
    assert hung_imbalance <= greedy_imbalance + 1


def test_ablation_superchunk_size(benchmark):
    """Smaller superchunks mean smaller Lstors at unchanged write cost."""

    def measure():
        runtimes = {}
        for sc_size in (2 * units.GiB, 6 * units.GiB):
            dfs = RaidpCluster(
                spec=SPEC,
                config=DfsConfig(replication=2),
                raidp=RaidpConfig(),
                superchunk_size=sc_size,
                payload_mode="tokens",
                seed=1,
            )
            runtimes[sc_size] = dfsio_write(dfs, DATASET).runtime
        return runtimes

    runtimes = benchmark.pedantic(measure, rounds=1, iterations=1)
    small, large = runtimes[2 * units.GiB], runtimes[6 * units.GiB]
    assert small == pytest.approx(large, rel=0.15)
