"""Unit and property tests for the payload planes (bytes vs tokens).

The key property: (BytesPayload, xor) and (TokenPayload, xor) are abelian
groups where every element is its own inverse, so parity identities
proved symbolically hold bitwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.payload import BytesPayload, ContentFactory, TokenPayload


# ----------------------------------------------------------------------
# BytesPayload.
# ----------------------------------------------------------------------
def test_bytes_xor_roundtrip():
    a = BytesPayload(b"hello world!")
    b = BytesPayload(b"HELLO WORLD?")
    assert a.xor(b).xor(b) == a
    assert (a ^ b) == a.xor(b)


def test_bytes_zero_identity():
    a = BytesPayload(b"data")
    zero = BytesPayload.zeros(4)
    assert a.xor(zero) == a
    assert zero.is_zero()
    assert not a.is_zero()


def test_bytes_immutability():
    arr = np.frombuffer(b"abcd", dtype=np.uint8)
    payload = BytesPayload(arr)
    with pytest.raises((ValueError, RuntimeError)):
        payload.data[0] = 99


def test_bytes_length_mismatch_rejected():
    with pytest.raises(ValueError):
        BytesPayload(b"ab").xor(BytesPayload(b"abc"))


def test_bytes_cross_plane_rejected():
    with pytest.raises(TypeError):
        BytesPayload(b"ab").xor(TokenPayload.of("x", 1))
    with pytest.raises(TypeError):
        TokenPayload.of("x", 1).xor(BytesPayload(b"ab"))


def test_bytes_slice_and_splice():
    payload = BytesPayload(b"0123456789")
    assert payload.slice(2, 5) == BytesPayload(b"234")
    patched = payload.splice(2, BytesPayload(b"XYZ"))
    assert patched == BytesPayload(b"01XYZ56789")
    assert payload == BytesPayload(b"0123456789")  # original untouched
    with pytest.raises(ValueError):
        payload.splice(9, BytesPayload(b"toolong"))


def test_bytes_checksum_changes_with_content():
    a = BytesPayload(b"aaaa")
    b = BytesPayload(b"aaab")
    assert a.checksum() != b.checksum()
    assert len(a) == 4


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=1, max_size=64), st.integers(0, 2**31))
def test_bytes_xor_group_properties(data, seed):
    rng = np.random.default_rng(seed)
    a = BytesPayload(data)
    b = BytesPayload(rng.integers(0, 256, size=len(data), dtype=np.uint8))
    c = BytesPayload(rng.integers(0, 256, size=len(data), dtype=np.uint8))
    assert a.xor(b) == b.xor(a)  # commutative
    assert a.xor(b).xor(c) == a.xor(b.xor(c))  # associative
    assert a.xor(a).is_zero()  # self-inverse


# ----------------------------------------------------------------------
# TokenPayload.
# ----------------------------------------------------------------------
def test_token_xor_is_symmetric_difference():
    a = TokenPayload.of("blk", 1)
    b = TokenPayload.of("blk", 2)
    delta = a.xor(b)
    assert delta.tokens == {("blk", 1), ("blk", 2)}
    assert delta.xor(a) == b
    assert a.xor(a).is_zero()


def test_token_zero():
    assert TokenPayload.zeros().is_zero()
    assert TokenPayload.of("x", 1).xor(TokenPayload.zeros()) == TokenPayload.of("x", 1)


@settings(max_examples=40, deadline=None)
@given(
    st.sets(st.tuples(st.text(max_size=3), st.integers(0, 5)), max_size=6),
    st.sets(st.tuples(st.text(max_size=3), st.integers(0, 5)), max_size=6),
)
def test_token_group_properties(sa, sb):
    a, b = TokenPayload(frozenset(sa)), TokenPayload(frozenset(sb))
    assert a.xor(b) == b.xor(a)
    assert a.xor(b).xor(b) == a
    assert a.xor(a).is_zero()


# ----------------------------------------------------------------------
# ContentFactory.
# ----------------------------------------------------------------------
def test_factory_is_deterministic():
    factory = ContentFactory(mode="bytes", seed=7)
    again = ContentFactory(mode="bytes", seed=7)
    assert factory.make("blk", 1, 64) == again.make("blk", 1, 64)
    assert factory.make("blk", 1, 64) != factory.make("blk", 2, 64)
    assert factory.make("blk", 1, 64) != factory.make("other", 1, 64)


def test_factory_token_mode():
    factory = ContentFactory(mode="tokens")
    assert factory.symbolic
    payload = factory.make("blk", 3, 10**12)  # size is free symbolically
    assert payload == TokenPayload.of("blk", 3)
    assert factory.zero(123).is_zero()


def test_factory_rejects_unknown_mode():
    with pytest.raises(ValueError):
        ContentFactory(mode="holographic")


# ----------------------------------------------------------------------
# Copy-free construction and the in-place XOR kernels.
# ----------------------------------------------------------------------
def test_bytes_construction_from_bytes_is_zero_copy():
    raw = b"zero copy please"
    payload = BytesPayload(raw)
    # The array must be backed by the original bytes object, not a copy.
    base = payload.data.base
    while isinstance(base, np.ndarray):
        base = base.base
    assert base is raw
    assert not payload.data.flags.writeable


def test_bytes_construction_copies_writable_arrays():
    arr = np.frombuffer(b"abcd", dtype=np.uint8).copy()  # writable
    payload = BytesPayload(arr)
    arr[0] = 99  # mutating the source must not reach the payload
    assert payload == BytesPayload(b"abcd")


def test_bytes_construction_copies_readonly_view_of_writable_base():
    base = np.frombuffer(b"abcd", dtype=np.uint8).copy()
    view = base[:]
    view.setflags(write=False)
    payload = BytesPayload(view)  # base is still writable: must copy
    base[0] = 99
    assert payload == BytesPayload(b"abcd")


def test_adopt_does_not_copy_and_freezes():
    arr = np.arange(8, dtype=np.uint8)
    payload = BytesPayload.adopt(arr)
    assert payload.data is arr  # same buffer, ownership transferred
    assert not arr.flags.writeable


def test_slice_is_zero_copy_view():
    payload = BytesPayload(b"0123456789")
    piece = payload.slice(2, 5)
    assert piece == BytesPayload(b"234")
    base = piece.data.base
    while isinstance(base, np.ndarray) and base is not payload.data:
        base = base.base
    assert base is payload.data or base is payload.data.base


def test_xor_into_matches_xor():
    rng = np.random.default_rng(11)
    a = BytesPayload(rng.integers(0, 256, size=64, dtype=np.uint8))
    b = BytesPayload(rng.integers(0, 256, size=64, dtype=np.uint8))
    buf = a.mutable_copy()
    b.xor_into(buf)
    assert BytesPayload.adopt(buf) == a.xor(b)


def test_xor_into_length_mismatch_rejected():
    a = BytesPayload(b"abc")
    with pytest.raises(ValueError):
        a.xor_into(np.zeros(5, dtype=np.uint8))


def test_checksum_is_cached_and_stable():
    payload = BytesPayload(b"cache me")
    first = payload.checksum()
    assert payload.checksum() == first
    import zlib

    assert first == zlib.crc32(b"cache me")


def test_xor_accumulator_bytes_plane():
    from repro.storage.payload import XorAccumulator

    rng = np.random.default_rng(12)
    payloads = [
        BytesPayload(rng.integers(0, 256, size=32, dtype=np.uint8)) for _ in range(5)
    ]
    accum = XorAccumulator(payloads[0])
    for p in payloads[1:]:
        accum.add(p)
    expected = payloads[0]
    for p in payloads[1:]:
        expected = expected.xor(p)
    assert accum.result() == expected
    # The initial payload must not have been mutated.
    assert payloads[0] == BytesPayload(payloads[0].data)


def test_xor_accumulator_token_plane():
    from repro.storage.payload import XorAccumulator

    accum = XorAccumulator(TokenPayload.of("blk", 1))
    accum.add(TokenPayload.of("blk", 2))
    accum.add(TokenPayload.of("blk", 1))
    assert accum.result() == TokenPayload.of("blk", 2)


def test_xor_accumulator_rejects_cross_plane():
    from repro.storage.payload import XorAccumulator

    accum = XorAccumulator(BytesPayload(b"ab"))
    with pytest.raises(TypeError):
        accum.add(TokenPayload.of("x", 1))
