"""Smoke-scale fingerprints and the ext-scale sweep.

Two guarantees ride on the incremental network solver:

- **Fingerprint stability**: a full workload run under the incremental
  solver produces bitwise-identical results to the retained brute-force
  reference solver (and to itself, run twice).
- **Scale-out tractability**: the ext-scale sweep's largest point (256
  nodes) completes at smoke scale and shows the expected shape.
"""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec
from repro.sim.network import SOLVER_ENV_VAR
from repro.workloads.dfsio import dfsio_read, dfsio_write


def _fingerprint(solver, monkeypatch, seed=42):
    """One smoke-scale RAIDP workload run, reduced to a hashable tuple."""
    monkeypatch.setenv(SOLVER_ENV_VAR, solver)
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(replication=2),
        raidp=RaidpConfig(),
        payload_mode="tokens",
        seed=seed,
    )
    write = dfsio_write(dfs, units.GiB)
    read = dfsio_read(dfs)
    placements = tuple(
        (loc.block.name, tuple(loc.datanodes), loc.sc_id, loc.slot)
        for loc in dfs.namenode.all_blocks()
    )
    traffic = tuple(
        (name, stats.bytes_sent, stats.bytes_received, stats.flows_started, stats.flows_finished)
        for name, stats in sorted(dfs.switch.node_traffic().items())
    )
    return (write.runtime, write.network_bytes, read.runtime, placements, traffic)


def test_incremental_solver_fingerprint_matches_reference(monkeypatch):
    """The incremental solver changes wall-clock cost, not results."""
    incremental = _fingerprint("incremental", monkeypatch)
    reference = _fingerprint("reference", monkeypatch)
    assert incremental == reference


def test_incremental_solver_fingerprint_is_stable(monkeypatch):
    assert _fingerprint("incremental", monkeypatch) == _fingerprint(
        "incremental", monkeypatch
    )


def test_flow_accounting_balances_after_workload(monkeypatch):
    """Every started flow finishes once the workload drains."""
    monkeypatch.setenv(SOLVER_ENV_VAR, "incremental")
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(replication=2),
        raidp=RaidpConfig(),
        payload_mode="tokens",
        seed=7,
    )
    dfsio_write(dfs, units.GiB)
    started = sum(s.flows_started for s in dfs.switch.node_traffic().values())
    finished = sum(s.flows_finished for s in dfs.switch.node_traffic().values())
    assert started > 0
    assert started == finished


def test_ext_scale_256_node_point_completes_and_has_shape():
    """The sweep's largest point runs at smoke scale (incremental solver)."""
    from repro.experiments.ext_scale import run_task

    write_s, per_node_gb, recovery_s = run_task(("raidp", 256, 1))
    assert write_s > 0
    assert recovery_s > 0
    assert per_node_gb > 0
    # Scale-out: the same per-node working set on 16 nodes must cost
    # about the same per node as on 256 (write pipelines are local).
    write_16, per_node_gb_16, _ = run_task(("raidp", 16, 1))
    assert write_s == pytest.approx(write_16, rel=0.25)
    assert per_node_gb == pytest.approx(per_node_gb_16, rel=0.25)


def test_ext_scale_raidp_network_beats_hdfs3():
    from repro.experiments.ext_scale import run_task

    _w, raidp_gb, _r = run_task(("raidp", 64, 1))
    _w, hdfs_gb, rec = run_task(("hdfs3", 64, 1))
    assert rec is None
    # 1 remote copy (plus parity acks) vs 2 remote copies.
    assert raidp_gb < 0.7 * hdfs_gb
