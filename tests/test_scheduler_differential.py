"""Differential tests: calendar-queue scheduler vs the heapq reference.

The three-lane calendar scheduler in :mod:`repro.sim.engine` is a pure
routing optimization -- dispatch must follow the exact global
``(time, seq)`` order the binary heap produces.  These tests run the
identical workload under ``scheduler="calendar"`` and
``scheduler="heap"`` and require the full dispatch logs to match
bitwise, under hypothesis-randomized mixes of the patterns that stress
each lane: constant-delay chains (calendar lane), zero delays
(now-bucket), out-of-order deadlines (overflow heap), interrupts, and
combinator waits.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import ProcessInterrupt, Simulator

# Delay menu: repeated values exercise the non-decreasing calendar lane,
# 0.0 the now-bucket, and the spread (a large delay followed by a small
# one from another process) the overflow heap.  Exact binary floats so
# equality comparisons across schedulers are bitwise-trivial.
_DELAYS = (0.0, 0.125, 0.25, 1.0, 1.0, 2.5, 7.0)

_worker_plans = st.lists(
    st.lists(st.sampled_from(sorted(set(_DELAYS))), min_size=1, max_size=6),
    min_size=1,
    max_size=6,
)

#: (delay, victim index) pairs for the interrupting process.
_interrupt_plans = st.lists(
    st.tuples(st.sampled_from((0.125, 0.5, 1.0, 3.0)), st.integers(0, 5)),
    max_size=4,
)

_join_plan = st.sampled_from(("none", "all", "any"))

Log = List[Tuple[Any, ...]]


def _run_workload(scheduler, workers, interrupts, join):
    """Execute one randomized plan; return the full dispatch log.

    The log records every observable resume: (tag, worker id, step,
    sim.now).  Appends happen inside process bodies, so two schedulers
    produce equal logs only if they dispatched every entry in the same
    order at the same simulated times.
    """
    sim = Simulator(scheduler=scheduler)
    log: Log = []
    procs = []

    def worker(wid, delays):
        for step, delay in enumerate(delays):
            try:
                yield sim.timeout(delay)
                log.append(("tick", wid, step, sim.now))
            except ProcessInterrupt:
                log.append(("interrupted", wid, step, sim.now))
        return wid

    def chaos(plan):
        for delay, victim in plan:
            yield sim.timeout(delay)
            target = procs[victim % len(procs)]
            log.append(("interrupt", victim % len(procs), target.is_alive, sim.now))
            target.interrupt("chaos")

    def joiner():
        if join == "all":
            value = yield sim.all_of(procs)
        else:
            value = yield sim.any_of(procs)
        log.append(("joined", join, repr(value), sim.now))

    for wid, delays in enumerate(workers):
        procs.append(sim.process(worker(wid, delays)))
    if interrupts:
        sim.process(chaos(interrupts))
    if join != "none":
        sim.process(joiner())
    sim.run()
    log.append(("end", sim.now, sim._seq))
    return log


@settings(max_examples=120, deadline=None)
@given(workers=_worker_plans, interrupts=_interrupt_plans, join=_join_plan)
def test_calendar_matches_heap_reference(workers, interrupts, join):
    calendar = _run_workload("calendar", workers, interrupts, join)
    heap = _run_workload("heap", workers, interrupts, join)
    assert calendar == heap


def test_overflow_heap_path_matches_reference():
    """A hand-built worst case: deadlines arrive strictly out of order."""
    workers = [[7.0, 0.125], [2.5, 0.125], [1.0, 0.0], [0.125, 7.0]]
    calendar = _run_workload("calendar", workers, [], "all")
    heap = _run_workload("heap", workers, [], "all")
    assert calendar == heap


def test_env_var_selects_scheduler(monkeypatch):
    monkeypatch.setenv("RAIDP_SCHEDULER", "heap")
    assert Simulator().scheduler == "heap"
    monkeypatch.setenv("RAIDP_SCHEDULER", "calendar")
    assert Simulator().scheduler == "calendar"
    monkeypatch.delenv("RAIDP_SCHEDULER")
    assert Simulator().scheduler == "calendar"
    assert Simulator(scheduler="heap").scheduler == "heap"


def test_experiment_fingerprint_invariant_under_scheduler(monkeypatch):
    """A real multi-layer workload agrees across schedulers end to end.

    The DFSIO write drives clients, datanodes, journal, Lstor, disks and
    the switch; its runtime is a function of every dispatch the run
    made, so equality here is an end-to-end order check on top of the
    synthetic workloads above.
    """
    from repro.experiments.common import Scale, build_raidp
    from repro.sim import snapshot
    from repro.workloads.dfsio import dfsio_write

    runtimes = {}
    for mode in ("calendar", "heap"):
        monkeypatch.setenv("RAIDP_SCHEDULER", mode)
        snapshot.GLOBAL_STORE.clear()
        dfs = build_raidp(Scale(), seed=1)
        assert dfs.sim.scheduler == mode
        runtimes[mode] = dfsio_write(dfs, 64 * 1024 * 1024).runtime
    assert runtimes["calendar"] == runtimes["heap"]
