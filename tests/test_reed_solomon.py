"""Unit and property tests for the systematic Reed-Solomon codec."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.reed_solomon import ReedSolomon
from repro.errors import CodingError


def make_shards(k, length, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(k)]


def test_encode_decode_roundtrip_all_shards_present():
    rs = ReedSolomon(4, 2)
    data = make_shards(4, 128)
    parity = rs.encode(data)
    shards = {i: s for i, s in enumerate(data)}
    shards.update({4 + i: p for i, p in enumerate(parity)})
    decoded = rs.decode(shards)
    for original, recovered in zip(data, decoded):
        assert np.array_equal(original, recovered)


def test_decode_from_every_k_subset():
    """MDS: any k of the n shards suffice."""
    rs = ReedSolomon(3, 2)
    data = make_shards(3, 64, seed=7)
    parity = rs.encode(data)
    all_shards = {i: s for i, s in enumerate(data)}
    all_shards.update({3 + i: p for i, p in enumerate(parity)})
    for subset in itertools.combinations(range(5), 3):
        shards = {i: all_shards[i] for i in subset}
        decoded = rs.decode(shards)
        for original, recovered in zip(data, decoded):
            assert np.array_equal(original, recovered)


def test_too_few_shards_raises():
    rs = ReedSolomon(4, 2)
    data = make_shards(4, 32)
    with pytest.raises(CodingError):
        rs.decode({0: data[0], 1: data[1], 2: data[2]})


def test_reconstruct_single_data_shard():
    rs = ReedSolomon(5, 1)
    data = make_shards(5, 100, seed=3)
    parity = rs.encode(data)
    shards = {i: s for i, s in enumerate(data) if i != 2}
    shards[5] = parity[0]
    rebuilt = rs.reconstruct_shard(shards, missing=2)
    assert np.array_equal(rebuilt, data[2])


def test_reconstruct_parity_shard():
    rs = ReedSolomon(3, 2)
    data = make_shards(3, 50, seed=11)
    parity = rs.encode(data)
    shards = {i: s for i, s in enumerate(data)}
    shards[3] = parity[0]
    rebuilt = rs.reconstruct_shard(shards, missing=4)
    assert np.array_equal(rebuilt, parity[1])


def test_single_parity_recovers_any_one_shard():
    """A (k, 1) code tolerates any single erasure -- the stacked-Lstor
    degenerate case.  (The generator is Vandermonde-derived, so the parity
    is a weighted XOR rather than the plain XOR a standalone Lstor uses.)"""
    rs = ReedSolomon(4, 1)
    data = make_shards(4, 64, seed=5)
    parity = rs.encode(data)
    all_shards = {i: s for i, s in enumerate(data)}
    all_shards[4] = parity[0]
    for missing in range(5):
        survivors = {i: s for i, s in all_shards.items() if i != missing}
        rebuilt = rs.reconstruct_shard(survivors, missing)
        expected = data[missing] if missing < 4 else parity[0]
        assert np.array_equal(rebuilt, expected)


def test_parity_delta_equals_reencoding():
    rs = ReedSolomon(4, 2)
    data = make_shards(4, 64, seed=9)
    parity = rs.encode(data)
    new_shard = make_shards(1, 64, seed=10)[0]
    deltas = rs.parity_delta(1, data[1], new_shard)
    updated = [np.bitwise_xor(p, d) for p, d in zip(parity, deltas)]
    data[1] = new_shard
    expected = rs.encode(data)
    for u, e in zip(updated, expected):
        assert np.array_equal(u, e)


def test_verify_detects_corruption():
    rs = ReedSolomon(3, 2)
    data = make_shards(3, 32, seed=1)
    parity = rs.encode(data)
    assert rs.verify(data, parity)
    parity[0][0] ^= 0xFF
    assert not rs.verify(data, parity)


def test_shard_length_mismatch_raises():
    rs = ReedSolomon(2, 1)
    with pytest.raises(CodingError):
        rs.encode([np.zeros(10, dtype=np.uint8), np.zeros(11, dtype=np.uint8)])


def test_wrong_shard_count_raises():
    rs = ReedSolomon(3, 1)
    with pytest.raises(CodingError):
        rs.encode(make_shards(2, 16))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ReedSolomon(0, 2)
    with pytest.raises(ValueError):
        ReedSolomon(200, 100)


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=6),
    p=st.integers(min_value=1, max_value=3),
    length=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_roundtrip_after_random_erasures(k, p, length, seed):
    rng = np.random.default_rng(seed)
    rs = ReedSolomon(k, p)
    data = [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(k)]
    parity = rs.encode(data)
    all_shards = {i: s for i, s in enumerate(data)}
    all_shards.update({k + i: s for i, s in enumerate(parity)})
    erased = rng.choice(k + p, size=min(p, k + p - k), replace=False)
    surviving = {i: s for i, s in all_shards.items() if i not in set(int(e) for e in erased)}
    decoded = rs.decode(surviving)
    for original, recovered in zip(data, decoded):
        assert np.array_equal(original, recovered)


@settings(max_examples=20, deadline=None)
@given(
    shard=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_parity_delta_consistency(shard, seed):
    rng = np.random.default_rng(seed)
    rs = ReedSolomon(4, 2)
    data = [rng.integers(0, 256, size=32, dtype=np.uint8) for _ in range(4)]
    parity = rs.encode(data)
    new = rng.integers(0, 256, size=32, dtype=np.uint8)
    deltas = rs.parity_delta(shard, data[shard], new)
    data[shard] = new
    expected = rs.encode(data)
    for p, d, e in zip(parity, deltas, expected):
        assert np.array_equal(np.bitwise_xor(p, d), e)
