"""Hypothesis property tests on the simulation substrate's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.disk import Disk, DiskGeometry
from repro.sim.engine import Simulator
from repro.sim.network import Nic, Switch


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_network_conserves_bytes_under_random_flows(data):
    """Whatever the flow schedule, delivered bytes equal requested bytes
    and every flow completes."""
    sim = Simulator()
    switch = Switch(sim)
    nics = [switch.attach(Nic(f"n{i}", units.gbps(10))) for i in range(5)]
    num_flows = data.draw(st.integers(min_value=1, max_value=15), label="flows")
    total = 0
    completions = []

    def flow_proc(src, dst, nbytes, delay):
        yield sim.timeout(delay)
        yield switch.transfer(src, dst, nbytes)
        completions.append(nbytes)

    for index in range(num_flows):
        src = nics[data.draw(st.integers(0, 4), label=f"src{index}")]
        dst_index = data.draw(st.integers(0, 4), label=f"dst{index}")
        dst = nics[dst_index] if nics[dst_index] is not src else nics[(dst_index + 1) % 5]
        nbytes = data.draw(
            st.integers(min_value=1, max_value=100 * units.MiB), label=f"b{index}"
        )
        delay = data.draw(st.floats(min_value=0, max_value=2.0), label=f"d{index}")
        total += nbytes
        sim.process(flow_proc(src, dst, nbytes, delay))
    sim.run()
    assert switch.total_bytes == total
    assert len(completions) == num_flows
    assert switch.active_flows == 0
    # Endpoint accounting is conserved too.
    sent = sum(nic.stats.bytes_sent for nic in nics)
    received = sum(nic.stats.bytes_received for nic in nics)
    assert sent == received == total


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_network_never_exceeds_port_capacity(data):
    """A single receiver's aggregate throughput cannot beat its line rate."""
    sim = Simulator()
    switch = Switch(sim)
    rate = units.gbps(1)
    sink = switch.attach(Nic("sink", rate))
    sources = [switch.attach(Nic(f"s{i}", units.gbps(10))) for i in range(4)]
    total = 0

    def flow_proc(src, nbytes):
        yield switch.transfer(src, sink, nbytes)

    for index, src in enumerate(sources):
        nbytes = data.draw(
            st.integers(min_value=units.MiB, max_value=50 * units.MiB),
            label=f"b{index}",
        )
        total += nbytes
        sim.process(flow_proc(src, nbytes))
    duration = sim.run()
    # Aggregate delivery cannot be faster than the sink's line rate.
    assert duration >= total / rate * 0.999


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_disk_busy_time_accounts_for_all_io(data):
    """Busy seconds equal the sum of per-I/O durations, and serialized
    I/O means the clock ends at or after the busy total."""
    sim = Simulator()
    disk = Disk(sim, DiskGeometry(), name="d")
    durations = []

    def one_io(kind, offset, nbytes):
        if kind == "read":
            took = yield from disk.read(offset, nbytes)
        else:
            took = yield from disk.write(offset, nbytes)
        durations.append(took)

    count = data.draw(st.integers(min_value=1, max_value=12), label="count")
    for index in range(count):
        kind = data.draw(st.sampled_from(["read", "write"]), label=f"k{index}")
        offset = data.draw(
            st.integers(min_value=0, max_value=units.TB), label=f"o{index}"
        )
        nbytes = data.draw(
            st.integers(min_value=1, max_value=64 * units.MiB), label=f"n{index}"
        )
        sim.process(one_io(kind, offset, nbytes))
    sim.run()
    assert disk.stats.busy_seconds == pytest.approx(sum(durations))
    assert sim.now == pytest.approx(disk.stats.busy_seconds)
    assert disk.stats.ios == count


@settings(max_examples=20, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=6),
    disks=st.integers(min_value=1, max_value=3),
)
def test_cluster_builder_shape(num_nodes, disks):
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=num_nodes, disks_per_node=disks))
    assert len(cluster.nodes) == num_nodes
    assert len(cluster.all_disks()) == num_nodes * disks
    names = {node.name for node in cluster.nodes}
    assert len(names) == num_nodes
