"""Unit tests for the local-filesystem allocation model."""

import pytest

from repro import units
from repro.errors import DeviceError
from repro.hdfs.localfs import LocalFs
from repro.sim.disk import Disk, DiskGeometry
from repro.sim.engine import Simulator


def make_fs(policy="extent"):
    sim = Simulator()
    disk = Disk(sim, DiskGeometry(), name="d0")
    return sim, disk, LocalFs(sim, disk, policy=policy)


def test_create_and_exists():
    _sim, _disk, fs = make_fs()
    fs.create("f1")
    assert fs.exists("f1")
    assert not fs.exists("f2")
    with pytest.raises(DeviceError):
        fs.create("f1")


def test_fixed_policy_requires_offset():
    _sim, _disk, fs = make_fs(policy="fixed")
    with pytest.raises(DeviceError):
        fs.create("f1")
    fs.create("f2", fixed_offset=units.GiB)
    assert fs.exists("f2")


def test_unknown_policy_rejected():
    sim = Simulator()
    disk = Disk(sim, DiskGeometry())
    with pytest.raises(ValueError):
        LocalFs(sim, disk, policy="zfs")


def test_sequential_appends_are_contiguous():
    sim, disk, fs = make_fs()
    fs.create("f1")

    def body():
        for i in range(4):
            yield from fs.write("f1", i * units.MiB, units.MiB)

    sim.run_process(body())
    assert fs.fragmentation_of("f1") == 1  # merged into one extent
    assert disk.stats.seeks == 0
    assert fs.size_of("f1") == 4 * units.MiB


def test_interleaved_writers_stay_sequential_on_extent_policy():
    """The ext4 behaviour the paper leans on: concurrent appenders to
    different files get consecutive extents and the disk never seeks."""
    sim, disk, fs = make_fs()
    fs.create("a")
    fs.create("b")

    def writer(name):
        for i in range(8):
            yield from fs.write(name, i * units.MiB, units.MiB)

    sim.process(writer("a"))
    sim.process(writer("b"))
    sim.run()
    assert disk.stats.seeks == 0
    # Each file is fragmented (extents interleave)...
    assert fs.fragmentation_of("a") > 1
    assert fs.fragmentation_of("b") > 1


def test_interleaved_files_fragment_reads():
    """...and reading one of them back pays the seeks instead (§6.2)."""
    sim, disk, fs = make_fs()
    fs.create("a")
    fs.create("b")

    def writer(name):
        for i in range(8):
            yield from fs.write(name, i * units.MiB, units.MiB)

    sim.process(writer("a"))
    sim.process(writer("b"))
    sim.run()
    before = disk.stats.seeks

    def reader():
        yield from fs.read("a", 0, 8 * units.MiB)

    sim.process(reader())
    sim.run()
    assert disk.stats.seeks > before


def test_fixed_offsets_cause_ping_pong_seeks():
    """RAIDP's preallocated files: interleaved writers bounce the head."""
    sim, disk, fs = make_fs(policy="fixed")
    fs.create("a", fixed_offset=0)
    fs.create("b", fixed_offset=500 * units.GiB)

    def writer(name):
        for i in range(8):
            yield from fs.write(name, i * units.MiB, units.MiB)

    sim.process(writer("a"))
    sim.process(writer("b"))
    sim.run()
    assert disk.stats.seeks >= 14  # nearly every I/O jumps superchunks


def test_overwrite_hits_same_physical_location():
    sim, disk, fs = make_fs()
    fs.create("f")

    def body():
        yield from fs.write("f", 0, units.MiB)
        frontier_after_first = fs.frontier
        yield from fs.write("f", 0, units.MiB)  # overwrite, no new alloc
        return frontier_after_first

    frontier = sim.run_process(body())
    assert fs.frontier == frontier


def test_sparse_write_rejected():
    sim, _disk, fs = make_fs()
    fs.create("f")

    def body():
        yield from fs.write("f", 10 * units.MiB, units.MiB)

    sim.process(body())
    with pytest.raises(DeviceError):
        sim.run()


def test_delete_recycles_space():
    sim, _disk, fs = make_fs()
    fs.create("a")

    def fill():
        yield from fs.write("a", 0, 4 * units.MiB)

    sim.run_process(fill())
    frontier = fs.frontier
    fs.delete("a")
    fs.create("b")

    def refill():
        yield from fs.write("b", 0, 4 * units.MiB)

    sim.run_process(refill())
    # Reused the freed extent instead of advancing the frontier.
    assert fs.frontier == frontier


def test_read_past_eof_rejected():
    sim, _disk, fs = make_fs()
    fs.create("f")

    def body():
        yield from fs.write("f", 0, units.MiB)
        yield from fs.read("f", 0, 2 * units.MiB)

    sim.process(body())
    with pytest.raises(DeviceError):
        sim.run()


def test_fixed_file_reads_at_fixed_offset():
    sim, disk, fs = make_fs(policy="fixed")
    base = 100 * units.GiB
    fs.create("f", fixed_offset=base)

    def body():
        yield from fs.write("f", units.MiB, units.MiB)
        yield from fs.read("f", units.MiB, units.MiB)

    sim.run_process(body())
    # Head ends where the read ended: base + 2 MiB.
    assert disk.head == base + 2 * units.MiB


def test_disk_full_raises():
    sim = Simulator()
    disk = Disk(sim, DiskGeometry(capacity=units.MiB), name="tiny")
    fs = LocalFs(sim, disk)
    fs.create("f")

    def body():
        yield from fs.write("f", 0, 2 * units.MiB)

    sim.process(body())
    with pytest.raises((DeviceError, ValueError)):
        sim.run()
