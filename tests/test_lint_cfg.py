"""CFG builder, dataflow solver, and call graph unit tests.

The golden-file tests pin the exact ``CFG.pretty()`` rendering for the
control shapes the flow rules lean on hardest: a ``try/finally``
spanning a yield (exception edges must route *through* the finally), a
``while/else`` (the else runs only on normal exit), and nested
generators (inner bodies are opaque to the outer CFG but get their own
graph).  If the builder's shape drifts, these diffs say exactly where.
"""

import ast

from repro.lint.callgraph import ModuleCallGraph
from repro.lint.cfg import CFG, build_cfg, function_cfgs
from repro.lint.dataflow import (
    GenKillAnalysis,
    ReachingDefinitions,
    assigned_names,
    run_forward,
)


def cfg_of(source: str, name: str = None):
    tree = ast.parse(source)
    cfgs = function_cfgs(tree)
    if name is None:
        (only,) = cfgs.values()
        return only
    return cfgs[name]


# ----------------------------------------------------------------------
# Golden renderings.
# ----------------------------------------------------------------------
TRY_FINALLY_YIELD = """\
def proc(res):
    grant = yield res.request()
    try:
        yield res.sleep(1.0)
    finally:
        res.release(grant)
    return None
"""

TRY_FINALLY_YIELD_GOLDEN = """\
cfg proc (generator)
  0: entry -> 3
  1: exit -> -
  2: raise -> -
  3: stmt L2 Assign yield -> 2[exc], 5
  4: finally -> 6
  5: stmt L4 Expr yield -> 4[exc], 4
  6: stmt L6 Expr cleanup -> 2[exc], 2, 7
  7: return L7 Return -> 1"""


def test_golden_try_finally_with_yield():
    assert cfg_of(TRY_FINALLY_YIELD).pretty() == TRY_FINALLY_YIELD_GOLDEN


WHILE_ELSE = """\
def scan(items):
    index = 0
    while index < len(items):
        if items[index] is None:
            break
        index += 1
    else:
        return -1
    return index
"""

WHILE_ELSE_GOLDEN = """\
cfg scan
  0: entry -> 3
  1: exit -> -
  2: raise -> -
  3: stmt L2 Assign -> 4
  4: loop L3 While -> 2[exc], 6[true], 9[false]
  5: join -> 10
  6: if L4 If -> 7[true], 8[false]
  7: break L5 Break -> 5
  8: stmt L6 AugAssign -> 4[back]
  9: return L8 Return -> 1
  10: return L9 Return -> 1"""


def test_golden_while_else():
    assert cfg_of(WHILE_ELSE).pretty() == WHILE_ELSE_GOLDEN


NESTED_GENERATORS = """\
def outer(sim):
    total = 0
    def inner(n):
        for i in range(n):
            yield i
    for value in inner(3):
        total += value
        yield sim.sleep(total)
"""

NESTED_OUTER_GOLDEN = """\
cfg outer (generator)
  0: entry -> 3
  1: exit -> -
  2: raise -> -
  3: stmt L2 Assign -> 4
  4: stmt L3 FunctionDef -> 5
  5: loop L6 For -> 2[exc], 7[true], 6[false]
  6: join -> 1
  7: stmt L7 AugAssign -> 8
  8: stmt L8 Expr yield -> 2[exc], 5[back]"""

NESTED_INNER_GOLDEN = """\
cfg outer.inner (generator)
  0: entry -> 3
  1: exit -> -
  2: raise -> -
  3: loop L4 For -> 2[exc], 5[true], 4[false]
  4: join -> 1
  5: stmt L5 Expr yield -> 2[exc], 3[back]"""


def test_golden_nested_generators():
    tree = ast.parse(NESTED_GENERATORS)
    cfgs = function_cfgs(tree)
    assert sorted(cfgs) == ["outer", "outer.inner"]
    assert cfgs["outer"].pretty() == NESTED_OUTER_GOLDEN
    assert cfgs["outer.inner"].pretty() == NESTED_INNER_GOLDEN


# ----------------------------------------------------------------------
# Structural properties.
# ----------------------------------------------------------------------
def test_while_true_without_break_has_no_normal_exit():
    cfg = cfg_of("def spin(sim):\n    while True:\n        yield sim.sleep(1)\n")
    assert not cfg.exit.preds  # no path reaches the normal exit


def test_raise_statement_has_exception_edge_and_flag():
    cfg = cfg_of("def boom():\n    raise ValueError('x')\n")
    raise_nodes = [n for n in cfg.statement_nodes() if n.label == "raise"]
    assert len(raise_nodes) == 1
    assert raise_nodes[0].can_raise
    assert (CFG.RAISE_EXIT, "exc") in raise_nodes[0].succs


def test_catch_all_handler_swallows_the_exception_edge():
    source = (
        "def guarded(op):\n"
        "    try:\n"
        "        op()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    cfg = cfg_of(source)
    # Only the handler body itself could propagate; the dispatch must not.
    dispatch = [n for n in cfg.nodes if n.label == "dispatch"]
    assert len(dispatch) == 1
    assert all(kind != "exc" for _t, kind in dispatch[0].succs)


def test_reverse_postorder_starts_at_entry_and_is_stable():
    cfg = cfg_of(WHILE_ELSE)
    order = cfg.reverse_postorder()
    assert order[0] == CFG.ENTRY
    assert order == cfg.reverse_postorder()


def test_build_cfg_rejects_non_functions():
    import pytest

    with pytest.raises(TypeError):
        build_cfg(ast.parse("x = 1"))


# ----------------------------------------------------------------------
# Dataflow: reaching definitions with the yield-staleness bit.
# ----------------------------------------------------------------------
def test_reaching_defs_mark_yield_crossings():
    source = (
        "def proc(disk, sim):\n"
        "    pending = disk.pending\n"
        "    yield sim.sleep(1.0)\n"
        "    disk.pending = pending + 1\n"
    )
    cfg = cfg_of(source)
    in_states, _ = run_forward(cfg, ReachingDefinitions())
    writeback = [n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Assign)][-1]
    defs = in_states[writeback.index]["pending"]
    assert all(crossed for _site, crossed in defs)
    # Parameters are definitions made at the entry.
    assert any(site == CFG.ENTRY for site, _ in in_states[writeback.index]["disk"])


def test_reaching_defs_fresh_after_reread():
    source = (
        "def proc(disk, sim):\n"
        "    yield sim.sleep(1.0)\n"
        "    pending = disk.pending\n"
        "    disk.pending = pending + 1\n"
    )
    cfg = cfg_of(source)
    in_states, _ = run_forward(cfg, ReachingDefinitions())
    writeback = [n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Assign)][-1]
    assert all(not crossed for _site, crossed in in_states[writeback.index]["pending"])


def test_assigned_names_cover_the_binding_forms():
    stmt = ast.parse("a, (b, *c) = x").body[0]
    assert assigned_names(stmt) == ["a", "b", "c"]
    stmt = ast.parse("for k, v in items:\n    pass").body[0]
    assert assigned_names(stmt) == ["k", "v"]
    stmt = ast.parse("if (n := compute()):\n    pass").body[0]
    assert "n" in assigned_names(stmt)


def test_genkill_exception_edge_keeps_pre_state():
    # token acquired at node A, released at node B; B can raise -- the
    # exception edge out of B must still carry the token (release did
    # not complete) unless exc_kills says otherwise.
    source = (
        "def proc(res, sim):\n"
        "    grant = yield res.request()\n"
        "    res.release(grant)\n"
    )
    cfg = cfg_of(source)
    acquire, release = list(cfg.statement_nodes())
    token = ("grant",)
    plain = GenKillAnalysis(
        {acquire.index: frozenset({token})}, {release.index: frozenset({token})}
    )
    in_states, _ = run_forward(cfg, plain)
    assert token in in_states[CFG.RAISE_EXIT]  # may leak via the release itself
    trusted = GenKillAnalysis(
        {acquire.index: frozenset({token})},
        {release.index: frozenset({token})},
        exc_kills={release.index: frozenset({token})},
    )
    in_states, _ = run_forward(cfg, trusted)
    # The acquire's own exc edge still reaches RAISE_EXIT state-free.
    assert in_states[CFG.RAISE_EXIT] == frozenset()
    assert in_states[CFG.EXIT] == frozenset()


# ----------------------------------------------------------------------
# Call graph.
# ----------------------------------------------------------------------
MODULE = """\
class Base:
    def ping(self):
        return 1

class Worker(Base):
    def __init__(self, sim):
        self.sim = sim

    def spin(self):
        yield self.sim.sleep(1.0)
        self.ping()

def launch(sim):
    worker = Worker(sim)
    sim.process(worker.spin())
    sim.process(plain())

def plain():
    yield None

def helper():
    return plain
"""


def test_callgraph_resolution_and_classification():
    graph = ModuleCallGraph.build(ast.parse(MODULE))
    assert graph.generators() == ["Worker.spin", "plain"]
    # self.ping() resolves up the module-local base chain.
    assert "Base.ping" in graph.callees("Worker.spin")
    # Worker(sim) resolves to the constructor.
    assert "Worker.__init__" in graph.callees("launch")
    assert graph.callers("plain") == ["launch"]
    # Only generator instantiations handed to *.process() are entries;
    # worker.spin() is not resolvable module-locally (receiver is a
    # variable), so plain() is the one classified entry.
    assert graph.process_entries == ["plain"]
