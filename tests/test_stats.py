"""Unit tests for the measurement helpers."""

import pytest

from repro.sim.stats import Counter, Histogram, MetricSet, TimeWeightedGauge, mean


def test_counter_increases_only():
    counter = Counter()
    counter.add()
    counter.add(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.add(-1)


def test_time_weighted_gauge_average():
    gauge = TimeWeightedGauge(start_time=0.0)
    gauge.set(2.0, now=1.0)  # value 0 held for [0, 1)
    gauge.set(4.0, now=3.0)  # value 2 held for [1, 3)
    # At t=4: areas 0*1 + 2*2 + 4*1 = 8 over 4 seconds.
    assert gauge.average(4.0) == pytest.approx(2.0)
    assert gauge.max_value == 4.0
    assert gauge.current == 4.0


def test_gauge_adjust_and_monotone_time():
    gauge = TimeWeightedGauge()
    gauge.adjust(+1, now=1.0)
    gauge.adjust(+1, now=2.0)
    gauge.adjust(-2, now=3.0)
    assert gauge.current == 0
    with pytest.raises(ValueError):
        gauge.set(1.0, now=0.5)


def test_gauge_reset_rebases_the_clock():
    # A repetition restarts simulated time at zero; reset() must accept
    # that where a plain set() raises, while keeping the lifetime average.
    gauge = TimeWeightedGauge(start_time=0.0)
    gauge.set(2.0, now=4.0)  # window 1: value 0 for [0, 4)
    with pytest.raises(ValueError):
        gauge.set(2.0, now=0.0)
    gauge.reset(0.0, value=2.0)
    gauge.set(2.0, now=4.0)  # window 2: value 2 for [0, 4)
    # Lifetime: 0*4 + 2*4 = 8 over 8 seconds.
    assert gauge.average(4.0) == pytest.approx(1.0)
    assert gauge.current == 2.0
    assert gauge.max_value == 2.0


def test_gauge_merge_combines_windows():
    a = TimeWeightedGauge()
    a.set(2.0, now=2.0)  # 0 for [0,2)
    b = TimeWeightedGauge()
    b.set(4.0, now=1.0)  # 0 for [0,1)
    b.set(4.0, now=3.0)  # 4 for [1,3)
    a.merge(b)
    # a: area 0 over 2s; b: area 8 over 3s -> combined 8 over 5s... plus
    # a's live value 2.0 extends to the average instant.
    assert a.average(2.0) == pytest.approx(8.0 / 5.0)
    assert a.max_value == 4.0


def test_gauge_average_at_start_time():
    gauge = TimeWeightedGauge(start_time=5.0, initial=3.0)
    assert gauge.average(5.0) == 3.0


def test_histogram_buckets_and_mean():
    hist = Histogram(bounds=(1.0, 10.0))
    for sample in (0.5, 5.0, 50.0, 0.1):
        hist.observe(sample)
    assert hist.counts == [2, 1, 1]
    assert hist.total == 4
    assert hist.mean == pytest.approx((0.5 + 5.0 + 50.0 + 0.1) / 4)
    assert hist.max == 50.0


def test_histogram_bisect_matches_linear_scan():
    # observe() switched to bisect; the bucket choice must match the old
    # linear scan exactly, including samples equal to a bucket bound.
    bounds = (0.001, 0.01, 0.1, 1.0, 10.0)
    hist = Histogram(bounds=bounds)
    samples = [0.0005, 0.001, 0.0011, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 10.0, 99.0]
    for sample in samples:
        hist.observe(sample)
    expected = [0] * (len(bounds) + 1)
    for sample in samples:
        index = 0
        while index < len(bounds) and sample > bounds[index]:
            index += 1
        expected[index] += 1
    assert hist.counts == expected


def test_histogram_merge():
    a = Histogram(bounds=(1.0, 10.0))
    b = Histogram(bounds=(1.0, 10.0))
    a.observe(0.5)
    b.observe(5.0)
    b.observe(50.0)
    a.merge(b)
    assert a.counts == [1, 1, 1]
    assert a.total == 3
    assert a.max == 50.0
    with pytest.raises(ValueError):
        a.merge(Histogram(bounds=(2.0,)))


def test_metric_set_counters_and_merge():
    metrics = MetricSet()
    metrics.add("reads", 3)
    metrics.add("writes")
    other = MetricSet()
    other.add("reads", 2)
    metrics.merge(other)
    assert metrics.get("reads") == 5
    assert metrics.get("missing") == 0
    assert metrics.as_dict()["counters"] == {"reads": 5, "writes": 1}


def test_metric_set_labels_and_all_kinds():
    metrics = MetricSet()
    metrics.add("disk_reads", 3, disk="n0-d0")
    metrics.add("disk_reads", 1, disk="n1-d0")
    gauge = metrics.gauge("queue_depth", disk="n0-d0")
    gauge.set(2.0, now=1.0)
    hist = metrics.histogram("io_latency", bounds=(1.0,), disk="n0-d0")
    hist.observe(0.5)
    snapshot = metrics.as_dict(now=2.0)
    assert snapshot["counters"] == {
        "disk_reads{disk=n0-d0}": 3,
        "disk_reads{disk=n1-d0}": 1,
    }
    gauges = snapshot["gauges"]
    assert gauges["queue_depth{disk=n0-d0}"]["current"] == 2.0
    assert gauges["queue_depth{disk=n0-d0}"]["average"] == pytest.approx(1.0)
    hists = snapshot["histograms"]
    assert hists["io_latency{disk=n0-d0}"]["count"] == 1
    # Label order never changes the key.
    metrics.add("xfers", 1, src="a", dst="b")
    assert metrics.get("xfers", dst="b", src="a") == 1


def test_metric_set_merge_all_kinds():
    a = MetricSet()
    b = MetricSet()
    a.gauge("g").set(2.0, now=2.0)
    b.gauge("g").set(4.0, now=2.0)
    b.histogram("h", bounds=(1.0,)).observe(0.5)
    b.add("c", 7)
    a.merge(b)
    snapshot = a.as_dict()
    assert snapshot["counters"] == {"c": 7}
    assert snapshot["gauges"]["g"]["max"] == 4.0
    assert snapshot["histograms"]["h"]["count"] == 1
    # Merging into an empty set deep-copies histogram counts (mutating the
    # source afterwards must not leak through).
    b.histogram("h").observe(0.2)
    assert a.as_dict()["histograms"]["h"]["count"] == 1


def test_mean_helper():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0
