"""Unit tests for the measurement helpers."""

import pytest

from repro.sim.stats import Counter, Histogram, MetricSet, TimeWeightedGauge, mean


def test_counter_increases_only():
    counter = Counter()
    counter.add()
    counter.add(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.add(-1)


def test_time_weighted_gauge_average():
    gauge = TimeWeightedGauge(start_time=0.0)
    gauge.set(2.0, now=1.0)  # value 0 held for [0, 1)
    gauge.set(4.0, now=3.0)  # value 2 held for [1, 3)
    # At t=4: areas 0*1 + 2*2 + 4*1 = 8 over 4 seconds.
    assert gauge.average(4.0) == pytest.approx(2.0)
    assert gauge.max_value == 4.0
    assert gauge.current == 4.0


def test_gauge_adjust_and_monotone_time():
    gauge = TimeWeightedGauge()
    gauge.adjust(+1, now=1.0)
    gauge.adjust(+1, now=2.0)
    gauge.adjust(-2, now=3.0)
    assert gauge.current == 0
    with pytest.raises(ValueError):
        gauge.set(1.0, now=0.5)


def test_gauge_average_at_start_time():
    gauge = TimeWeightedGauge(start_time=5.0, initial=3.0)
    assert gauge.average(5.0) == 3.0


def test_histogram_buckets_and_mean():
    hist = Histogram(bounds=(1.0, 10.0))
    for sample in (0.5, 5.0, 50.0, 0.1):
        hist.observe(sample)
    assert hist.counts == [2, 1, 1]
    assert hist.total == 4
    assert hist.mean == pytest.approx((0.5 + 5.0 + 50.0 + 0.1) / 4)
    assert hist.max == 50.0


def test_metric_set_counters_and_merge():
    metrics = MetricSet()
    metrics.add("reads", 3)
    metrics.add("writes")
    other = MetricSet()
    other.add("reads", 2)
    metrics.merge(other)
    assert metrics.get("reads") == 5
    assert metrics.get("missing") == 0
    assert metrics.as_dict() == {"reads": 5, "writes": 1}


def test_mean_helper():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert mean([]) == 0.0
