"""A fast chaos-soak smoke test: same-seed determinism and survival.

The full soak (``make chaos`` / ``python -m repro.tools.chaos``) runs a
heavier randomized schedule; this keeps a single reduced configuration in
the tier-1 suite so regressions in the failure lifecycle surface in CI.
"""

import pytest

from repro.tools.chaos import DEFAULT_SEED, run_chaos, run_repeated

SEED = 20260806


@pytest.fixture(scope="module")
def soak():
    return run_repeated(SEED, runs=2, nic_degrades=0, lstor_losses=0)


def test_chaos_soak_survives(soak):
    assert soak.ok, "\n".join(soak.problems)


def test_chaos_soak_injected_and_recovered(soak):
    fp = soak.fingerprint
    # The schedule landed: a sharing-pair double, a single, and a node
    # crash/restart cycle, all during traffic.
    kinds = [record[1] for record in fp["injections"]]
    assert kinds.count("disk_fail") == 3
    assert kinds.count("node_crash") == 1
    assert kinds.count("node_restart") == 1
    assert fp["reports"], "no recovery ran"
    assert fp["rejoined"], "the restarted node never rejoined"
    assert fp["recovery_errors"] == []
    assert fp["blocks"], "nothing was verified"
    assert fp["under_replicated"] == 0


def test_chaos_timeline_orders_fault_detect_recover(soak):
    """Every detection row shows fault <= detection <= recovery-complete."""
    timeline = soak.fingerprint["timeline"]
    assert timeline, "no timeline rows despite detections"
    assert len(timeline) == len(soak.fingerprint["detected"])
    for row in timeline:
        assert row["victims"]
        assert row["injected_at"] is not None
        assert row["recovered_at"] is not None
        assert row["injected_at"] <= row["detected_at"] <= row["recovered_at"]
        assert row["detect_latency"] == pytest.approx(
            row["detected_at"] - row["injected_at"]
        )
        assert row["recover_latency"] == pytest.approx(
            row["recovered_at"] - row["injected_at"]
        )
    rendered = soak.render_timeline()
    assert "victims" in rendered and "rec lat" in rendered


def test_chaos_cli_rejects_unknown_args():
    from repro.tools.chaos import main

    with pytest.raises(SystemExit):
        main(["--no-such-flag"])


def test_default_seed_is_stable():
    # The documented default: anyone running `make chaos` gets this plan.
    assert DEFAULT_SEED == 0xC4A05
