"""Unit tests for the repro.lint engine: suppressions, scoping, CLI."""

import json

from repro.lint.cli import JSON_SCHEMA_VERSION, build_engine, main
from repro.lint.engine import (
    SUPPRESSION_RULE_ID,
    LintConfig,
    LintEngine,
    Suppressions,
)
from repro.lint.rules import WallClockRule, default_rules

VIOLATION = "import time\nt = time.time()\n"


def engine_for(rule_ids=None, **config_kwargs):
    config = LintConfig(
        select=frozenset(rule_ids) if rule_ids else None, **config_kwargs
    )
    return LintEngine(default_rules(), config)


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------
def test_justified_suppression_suppresses():
    source = "import time\nt = time.time()  # raidp: noqa[RDP001] -- test fixture\n"
    findings = engine_for(["RDP001"]).lint_source(source)
    assert findings == []


def test_bare_suppression_is_reported_and_does_not_suppress():
    source = "import time\nt = time.time()  # raidp: noqa[RDP001]\n"
    findings = engine_for(["RDP001"]).lint_source(source)
    rules = {f.rule for f in findings}
    assert SUPPRESSION_RULE_ID in rules  # the malformed noqa itself
    assert "RDP001" in rules  # ...and the violation still fires


def test_suppression_only_covers_named_rules():
    source = "import time\nt = time.time()  # raidp: noqa[RDP005] -- wrong rule\n"
    findings = engine_for(["RDP001"]).lint_source(source)
    assert [f.rule for f in findings] == ["RDP001"]


def test_multi_rule_suppression():
    suppressions = Suppressions(
        "x = 1  # raidp: noqa[RDP001, RDP002] -- shared fixture\n"
    )
    assert suppressions.suppresses(1, "RDP001")
    assert suppressions.suppresses(1, "RDP002")
    assert not suppressions.suppresses(1, "RDP003")
    assert not suppressions.suppresses(2, "RDP001")


def test_docstring_mention_of_noqa_is_not_a_suppression():
    source = '"""Docs show # raidp: noqa[RDP001] without effect."""\nx = 1\n'
    suppressions = Suppressions(source)
    assert len(suppressions) == 0
    assert suppressions.malformed == []


# ----------------------------------------------------------------------
# Engine configuration: select / ignore / allowlists / scoping.
# ----------------------------------------------------------------------
def test_select_restricts_rules():
    engine = engine_for(["RDP005"])
    assert [rule.id for rule in engine.rules] == ["RDP005"]
    assert engine.lint_source(VIOLATION) == []  # RDP001 not selected


def test_ignore_drops_rules():
    engine = engine_for(None, ignore=frozenset(["RDP001"]))
    assert "RDP001" not in [rule.id for rule in engine.rules]


def test_allowlist_exempts_whole_file():
    config = LintConfig(
        select=frozenset(["RDP001"]),
        allowlists={"RDP001": ("*/bench.py",)},
    )
    engine = LintEngine(default_rules(), config)
    assert engine.lint_source(VIOLATION, path="src/tools/bench.py") == []
    assert engine.lint_source(VIOLATION, path="src/sim/engine.py") != []


def test_path_scoped_rule_skips_out_of_scope_files():
    engine = engine_for(["RDP003"])
    source = "import threading\n"
    assert engine.lint_source(source, path="src/repro/sim/engine.py") != []
    assert engine.lint_source(source, path="src/repro/tools/cli.py") == []


def test_syntax_error_becomes_e999_finding():
    findings = engine_for().lint_source("def broken(:\n")
    assert [f.rule for f in findings] == ["E999"]
    assert findings[0].severity == "error"


def test_findings_are_sorted_by_location():
    source = "import time\na = time.time()\nb = time.time()\n"
    findings = engine_for(["RDP001"]).lint_source(source)
    assert [f.line for f in findings] == sorted(f.line for f in findings)


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------
def test_cli_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    assert main([str(target)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_violation_exits_one(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(VIOLATION)
    assert main([str(target)]) == 1
    out = capsys.readouterr().out
    assert "RDP001" in out


def test_cli_json_output_schema(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(VIOLATION)
    assert main(["--format", "json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["counts"]["error"] >= 1
    finding = payload["findings"][0]
    assert set(finding) == {"path", "line", "col", "rule", "severity", "message"}


def test_cli_show_source_prints_offending_line(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(VIOLATION)
    main(["--show-source", str(target)])
    out = capsys.readouterr().out
    assert "t = time.time()" in out


def test_cli_select_filters_rules(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(VIOLATION)
    assert main(["--select", "RDP005", str(target)]) == 0
    capsys.readouterr()


def test_cli_strict_fails_on_warnings(tmp_path, capsys):
    target = tmp_path / "keys.py"
    target.write_text("d = {}\nfor k in d.keys():\n    print(k)\n")
    assert main([str(target)]) == 0  # warnings alone pass...
    assert main(["--strict", str(target)]) == 1  # ...except under --strict
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RDP001", "RDP002", "RDP003", "RDP004", "RDP005", "RDP006"):
        assert rule_id in out


def test_cli_lints_directories_recursively(tmp_path, capsys):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "a.py").write_text("x = 1\n")
    (package / "b.py").write_text(VIOLATION)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "2 files checked" in out


def test_build_engine_uses_repo_allowlists():
    engine = build_engine()
    assert engine.config.allowlisted("RDP001", "src/repro/tools/bench.py")
    assert not engine.config.allowlisted("RDP001", "src/repro/sim/engine.py")


def test_wall_clock_rule_is_unscoped():
    assert WallClockRule().applies_to("anything/at/all.py")
