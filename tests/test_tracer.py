"""Span tracing: emission, determinism, export round-trips, breakdowns.

The load-bearing guarantee is the determinism test: running the exact
same workload with tracing on and off must produce bitwise-identical
simulation results, because the tracer only appends to a Python list --
it never touches the event heap or the tie-breaking sequence counter.
"""

import json

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.hdfs.config import DfsConfig
from repro.obs.export import (
    load_trace,
    recovery_breakdown,
    render_summary,
    summarize,
    to_chrome,
    to_jsonl,
    write_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Tracer,
    activate,
    active_tracer,
    capture,
    deactivate,
    iter_spans,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator
from repro.workloads.dfsio import dfsio_read, dfsio_write


# ----------------------------------------------------------------------
# Tracer mechanics.
# ----------------------------------------------------------------------
def test_complete_instant_count_emission():
    tracer = Tracer()
    tracer.register_run("r0")
    tracer.complete("disk", "read", 1.0, 2.5, disk="n0-d0")
    tracer.instant("fault", "disk_fail", 3.0, target="n1")
    tracer.count("journal", "n0", 3.5, 2)
    assert len(tracer) == 3
    phases = [event.phase for event in tracer.events]
    assert phases == ["X", "i", "C"]
    span = tracer.events[0]
    assert span.dur == pytest.approx(1.5)
    assert span.end == pytest.approx(2.5)
    assert span.attrs == {"disk": "n0-d0"}
    # Sequence numbers are strictly increasing: stable sort key.
    seqs = [event.seq for event in tracer.events]
    assert seqs == sorted(seqs) and len(set(seqs)) == 3


def test_span_context_manager_nesting_and_error():
    tracer = Tracer()
    sim = Simulator()

    class Clock:
        now = 0.0

    clock = Clock()
    with tracer.span(clock, "outer", "a"):
        clock.now = 1.0
        with tracer.span(clock, "inner", "b"):
            clock.now = 3.0
    # Inner exits (and records) first; both windows are correct.
    inner, outer = tracer.events
    assert (inner.category, inner.ts, inner.end) == ("inner", 1.0, 3.0)
    assert (outer.category, outer.ts, outer.end) == ("outer", 0.0, 3.0)
    with pytest.raises(ValueError):
        with tracer.span(clock, "outer", "boom"):
            raise ValueError("x")
    assert tracer.events[-1].attrs["error"] == "ValueError"
    del sim


def test_category_filter_drops_unlisted_categories():
    tracer = Tracer(categories={"recovery"})
    tracer.complete("disk", "read", 0.0, 1.0)
    tracer.complete("recovery", "single", 0.0, 1.0)
    tracer.instant("net", "resolve", 0.5)
    assert [event.category for event in tracer.events] == ["recovery"]


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.complete("a", "b", 0.0, 1.0)
    NULL_TRACER.instant("a", "b", 0.0)
    NULL_TRACER.count("a", "b", 0.0, 1)
    with NULL_TRACER.span(None, "a", "b"):
        pass
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.run_labels == ()


def test_activation_scoping():
    assert active_tracer() is NULL_TRACER
    tracer = activate()
    assert active_tracer() is tracer
    deactivate()
    assert active_tracer() is NULL_TRACER
    with capture() as captured:
        assert active_tracer() is captured
        with capture() as nested:
            assert active_tracer() is nested
        assert active_tracer() is captured
    assert active_tracer() is NULL_TRACER


def test_simulator_binds_the_active_tracer():
    with capture() as tracer:
        sim_a = Simulator()
        sim_b = Simulator()
    untraced = Simulator()
    assert sim_a.trace is tracer and sim_b.trace is tracer
    assert untraced.trace is NULL_TRACER
    # Each simulator registered its own run index.
    assert len(tracer.run_labels) == 2


# ----------------------------------------------------------------------
# Determinism: tracing must not perturb the simulation.
# ----------------------------------------------------------------------
def _workload_fingerprint(seed=42):
    """A smoke-scale write+read workload reduced to a hashable tuple."""
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(replication=2),
        raidp=RaidpConfig(),
        payload_mode="tokens",
        seed=seed,
    )
    write = dfsio_write(dfs, 256 * units.MiB)
    read = dfsio_read(dfs)
    placements = tuple(
        (loc.block.name, tuple(loc.datanodes), loc.sc_id, loc.slot)
        for loc in dfs.namenode.all_blocks()
    )
    traffic = tuple(
        (name, stats.bytes_sent, stats.bytes_received,
         stats.flows_started, stats.flows_finished)
        for name, stats in sorted(dfs.switch.node_traffic().items())
    )
    return (write.runtime, write.network_bytes, read.runtime, placements, traffic)


def test_tracing_does_not_change_the_simulation():
    """Bitwise-identical results with tracing off, on, and off again."""
    before = _workload_fingerprint()
    with capture() as tracer:
        traced = _workload_fingerprint()
    after = _workload_fingerprint()
    assert before == traced == after
    assert len(tracer) > 0  # the traced run actually recorded events


def test_traced_runs_are_reproducible():
    """Two traced runs produce identical event streams."""
    def run():
        with capture() as tracer:
            _workload_fingerprint()
        return [
            (e.run, e.seq, e.phase, e.category, e.name, e.ts, e.dur, e.attrs)
            for e in tracer.events
        ]

    assert run() == run()


# ----------------------------------------------------------------------
# Export round-trips.
# ----------------------------------------------------------------------
def _sample_tracer():
    tracer = Tracer()
    tracer.register_run("sample")
    tracer.complete("disk", "read", 0.25, 1.75, disk="n0-d0", bytes=4096)
    tracer.instant("fault", "disk_fail", 2.0, target="n1")
    tracer.count("journal", "n0", 2.5, 3)
    return tracer


def test_jsonl_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.jsonl")
    assert write_trace(tracer, path) == 3
    events = load_trace(path)
    original = [
        (e.run, e.phase, e.category, e.name, e.ts, e.dur, e.attrs)
        for e in tracer.events
    ]
    loaded = [
        (e.run, e.phase, e.category, e.name, e.ts, e.dur, e.attrs)
        for e in events
    ]
    assert original == loaded


def test_chrome_export_shape_and_round_trip(tmp_path):
    tracer = _sample_tracer()
    path = str(tmp_path / "trace.json")
    assert write_trace(tracer, path) == 3
    with open(path) as fh:
        payload = json.load(fh)
    records = payload["traceEvents"]
    # Metadata names the process after the registered run label.
    meta = [r for r in records if r["ph"] == "M"]
    assert any(
        r["name"] == "process_name" and r["args"]["name"] == "sim sample"
        for r in meta
    )
    spans = [r for r in records if r["ph"] == "X"]
    assert spans[0]["ts"] == pytest.approx(0.25e6)  # microseconds
    assert spans[0]["dur"] == pytest.approx(1.5e6)
    instants = [r for r in records if r["ph"] == "i"]
    assert instants[0]["s"] == "t"
    # Loading rescales back to seconds and drops metadata.
    events = load_trace(path)
    assert len(events) == 3
    assert events[0].ts == pytest.approx(0.25)
    assert events[0].dur == pytest.approx(1.5)


def test_summarize_aggregates_by_category_and_name():
    tracer = _sample_tracer()
    tracer.complete("disk", "read", 2.0, 3.0)
    table = summarize(tracer.events)
    assert table["disk.read"]["count"] == 2
    assert table["disk.read"]["total_s"] == pytest.approx(2.5)
    assert table["disk.read"]["max_s"] == pytest.approx(1.5)
    assert table["fault.disk_fail"]["count"] == 1
    assert list(iter_spans(tracer.events, "disk")) == [
        tracer.events[0], tracer.events[-1]
    ]


# ----------------------------------------------------------------------
# Recovery breakdowns on a real cluster.
# ----------------------------------------------------------------------
def _recovery_cluster(seed=3):
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=2,
        payload_mode="bytes",
        seed=seed,
    )

    def workload():
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/t/f{index}", 3 * units.MiB)

    dfs.sim.run_process(workload())
    return dfs


def test_double_failure_phases_sum_to_reported_duration():
    """The acceptance property behind ``raidpctl trace`` on table2: for a
    reconstruction-only double recovery, the phase spans exactly cover
    the report's duration."""
    with capture() as tracer:
        dfs = _recovery_cluster()
        manager = RecoveryManager(dfs)
        a, b = next(
            (x, y)
            for x in dfs.layout.disks
            for y in dfs.layout.disks
            if x < y and dfs.layout.shared(x, y) is not None
        )
        report = manager.recover_double_failure(
            a, b, options=RecoveryOptions(), remirror_rest=False, install=False
        )
    breakdowns = recovery_breakdown(tracer.events)
    assert len(breakdowns) == 1
    item = breakdowns[0]
    assert item["kind"] == "double"
    assert item["total_s"] == pytest.approx(report.duration)
    reconstruct = item["phases"]["reconstruct"]
    assert reconstruct["sum_s"] == pytest.approx(report.duration)
    assert item["coverage"] == pytest.approx(1.0)
    assert item["superchunks"][0]["sc"] == report.reconstructed_sc
    text = render_summary(tracer.events)
    assert "recovery [double]" in text and "coverage 100.0%" in text


def test_single_failure_phase_spans_cover_remirrors():
    with capture() as tracer:
        dfs = _recovery_cluster()
        manager = RecoveryManager(dfs)
        victim = dfs.layout.disks[0]
        report = manager.recover_single_failure(victim)
    breakdowns = recovery_breakdown(tracer.events)
    assert len(breakdowns) == 1
    item = breakdowns[0]
    assert item["kind"] == "single"
    assert item["total_s"] == pytest.approx(report.duration)
    remirror = item["phases"]["remirror"]
    assert remirror["count"] == len(report.remirrored)
    # Remirrors run in parallel: the straight sum may exceed the window,
    # the interval union never does.
    assert remirror["union_s"] <= item["total_s"] + 1e-9
    assert item["phases"]["plan"]["count"] == 1
