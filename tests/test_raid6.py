"""Unit tests for the RAID-6 P+Q code and array model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.raid6 import (
    Raid6Array,
    pq_encode,
    pq_recover_one_data,
    pq_recover_two_data,
)
from repro.errors import CodingError


def make_stripe(k, length, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=length, dtype=np.uint8) for _ in range(k)]


def test_p_is_xor_of_data():
    data = make_stripe(4, 32)
    p, _q = pq_encode(data)
    expected = np.zeros(32, dtype=np.uint8)
    for block in data:
        np.bitwise_xor(expected, block, out=expected)
    assert np.array_equal(p, expected)


def test_recover_one_data_block():
    data = make_stripe(5, 64, seed=2)
    p, _q = pq_encode(data)
    survivors = {i: d for i, d in enumerate(data) if i != 3}
    rebuilt = pq_recover_one_data(survivors, 3, p)
    assert np.array_equal(rebuilt, data[3])


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_recover_two_data_blocks_property(k, seed):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size=48, dtype=np.uint8) for _ in range(k)]
    p, q = pq_encode(data)
    x, y = sorted(rng.choice(k, size=2, replace=False))
    survivors = {i: d for i, d in enumerate(data) if i not in (int(x), int(y))}
    d_x, d_y = pq_recover_two_data(survivors, int(x), int(y), p, q)
    assert np.array_equal(d_x, data[int(x)])
    assert np.array_equal(d_y, data[int(y)])


def test_recover_two_rejects_equal_indices():
    data = make_stripe(4, 16)
    p, q = pq_encode(data)
    with pytest.raises(CodingError):
        pq_recover_two_data({0: data[0], 1: data[1]}, 2, 2, p, q)


def test_recover_rejects_survivor_marked_missing():
    data = make_stripe(4, 16)
    p, q = pq_encode(data)
    with pytest.raises(CodingError):
        pq_recover_one_data({i: d for i, d in enumerate(data)}, 0, p)
    with pytest.raises(CodingError):
        pq_recover_two_data({i: d for i, d in enumerate(data)}, 0, 1, p, q)


def test_empty_stripe_rejected():
    with pytest.raises(CodingError):
        pq_encode([])


def test_array_write_read_roundtrip():
    array = Raid6Array(data_disks=4, disk_size=1024)
    array.write(1, 100, b"hello raid6")
    assert array.read(1, 100, 11) == b"hello raid6"
    assert array.verify()


def test_array_incremental_parity_stays_consistent():
    array = Raid6Array(data_disks=3, disk_size=256)
    rng = np.random.default_rng(4)
    for _ in range(20):
        disk = int(rng.integers(0, 3))
        offset = int(rng.integers(0, 200))
        payload = bytes(rng.integers(0, 256, size=int(rng.integers(1, 56)), dtype=np.uint8))
        array.write(disk, offset, payload)
    assert array.verify()


def test_array_survives_double_failure():
    array = Raid6Array(data_disks=5, disk_size=512)
    rng = np.random.default_rng(9)
    originals = {}
    for disk in range(5):
        payload = bytes(rng.integers(0, 256, size=512, dtype=np.uint8))
        array.write(disk, 0, payload)
        originals[disk] = payload
    array.fail(1)
    array.fail(4)
    accounting = array.recover()
    for disk in range(5):
        assert array.read(disk, 0, 512) == originals[disk]
    # Recovery volume: all 3 survivors + P + Q read, 2 disks rewritten.
    assert accounting["bytes_read"] == 5 * 512
    assert accounting["bytes_written"] == 2 * 512
    assert array.verify()


def test_array_rejects_third_failure():
    array = Raid6Array(data_disks=4, disk_size=64)
    array.fail(0)
    array.fail(1)
    with pytest.raises(CodingError):
        array.fail(2)


def test_array_rejects_io_on_failed_disk():
    array = Raid6Array(data_disks=3, disk_size=64)
    array.fail(0)
    with pytest.raises(CodingError):
        array.write(0, 0, b"x")
    with pytest.raises(CodingError):
        array.read(0, 0, 1)


def test_array_bounds_checks():
    array = Raid6Array(data_disks=2, disk_size=16)
    with pytest.raises(ValueError):
        array.write(0, 10, b"way too long payload")
    with pytest.raises(ValueError):
        array.write(5, 0, b"x")
    with pytest.raises(ValueError):
        Raid6Array(data_disks=1, disk_size=16)
