"""Tests for heartbeat monitoring and automatic recovery."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.monitor import ClusterMonitor, MonitorConfig
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def cluster(num_nodes=8, per_disk=3, payload_mode="bytes"):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=per_disk,
        payload_mode=payload_mode,
    )


def write_data(dfs, files=6):
    def body():
        procs = [
            dfs.sim.process(dfs.clients[i % len(dfs.clients)].write_file(f"/f{i}", 3 * units.MiB))
            for i in range(files)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(body())


def run_monitored(dfs, monitor, scenario_body, horizon=120.0):
    """Start the monitor, run a scenario process, stop, drain."""
    monitor.start()
    done = dfs.sim.process(scenario_body, name="scenario")
    dfs.sim.run(until=horizon)
    assert done.triggered
    monitor.stop()
    dfs.sim.run()
    return done.value


def test_config_validation():
    with pytest.raises(ValueError):
        MonitorConfig(heartbeat_interval=0)
    with pytest.raises(ValueError):
        MonitorConfig(heartbeat_interval=5.0, dead_after=1.0)


def test_heartbeats_keep_healthy_nodes_fresh():
    dfs = cluster(payload_mode="tokens")
    monitor = ClusterMonitor(dfs)

    def scenario():
        yield dfs.sim.timeout(30.0)

    run_monitored(dfs, monitor, scenario())
    for datanode in dfs.datanodes:
        assert monitor.last_heartbeat(datanode.name) > 20.0
    assert monitor.detected == []


def test_single_disk_failure_is_detected_and_recovered():
    dfs = cluster()
    write_data(dfs)
    monitor = ClusterMonitor(dfs)
    victim = dfs.datanodes[0]

    def scenario():
        yield dfs.sim.timeout(5.0)
        victim.disk.fail()
        yield dfs.sim.timeout(60.0)

    run_monitored(dfs, monitor, scenario())
    assert any(victim.name in names for _t, names in monitor.detected)
    assert monitor.reports, "no recovery ran"
    assert dfs.layout.is_fully_mirrored
    dfs.verify_mirrors()
    dfs.verify_parity()
    # Detection respects the staleness bound.
    detect_time = monitor.detected[0][0]
    assert detect_time >= 5.0 + monitor.config.dead_after - monitor.config.heartbeat_interval


def test_double_failure_triggers_lstor_reconstruction():
    dfs = cluster()
    write_data(dfs, files=8)
    a, b = next(
        (x, y)
        for x in dfs.layout.disks
        for y in dfs.layout.disks
        if x < y and dfs.layout.shared(x, y) is not None
    )
    monitor = ClusterMonitor(dfs)

    def scenario():
        yield dfs.sim.timeout(5.0)
        dfs.datanode_by_name(a).disk.fail()
        dfs.datanode_by_name(b).disk.fail()
        yield dfs.sim.timeout(90.0)

    run_monitored(dfs, monitor, scenario(), horizon=200.0)
    reconstructed = [r for r in monitor.reports if r.reconstructed_sc is not None]
    assert reconstructed, "the shared superchunk was not reconstructed"
    assert dfs.layout.is_fully_mirrored
    dfs.verify_mirrors()
    dfs.verify_parity()


def test_non_sharing_double_failure_runs_two_singles():
    dfs = cluster(num_nodes=9, per_disk=2, payload_mode="tokens")
    write_data(dfs, files=4)
    pair = next(
        (x, y)
        for x in dfs.layout.disks
        for y in dfs.layout.disks
        if x < y and dfs.layout.shared(x, y) is None
    )
    monitor = ClusterMonitor(dfs)

    def scenario():
        yield dfs.sim.timeout(5.0)
        for name in pair:
            dfs.datanode_by_name(name).disk.fail()
        yield dfs.sim.timeout(90.0)

    run_monitored(dfs, monitor, scenario(), horizon=200.0)
    assert len(monitor.reports) == 2
    assert all(r.reconstructed_sc is None for r in monitor.reports)
    dfs.verify_mirrors()


def test_stop_lets_simulation_drain():
    dfs = cluster(payload_mode="tokens")
    monitor = ClusterMonitor(dfs)
    monitor.start()
    dfs.sim.run(until=10.0)
    monitor.stop()
    dfs.sim.run()  # must terminate without DeadlockError
    assert not dfs.sim._heap
