"""Tests for in-place updates and trace replay (paper §8 extensions)."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.errors import DfsError
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec
from repro.workloads.traces import (
    TraceOp,
    generate_ycsb_trace,
    replay_trace,
    update_amplification,
    zipf_weights,
)


def raidp_cluster(payload_mode="bytes", num_nodes=5):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        payload_mode=payload_mode,
    )


# ----------------------------------------------------------------------
# In-place updates.
# ----------------------------------------------------------------------
def test_update_range_patches_content_bit_exact():
    dfs = raidp_cluster()
    client = dfs.client(0)

    def body():
        yield from client.write_file("/db", 3 * units.MiB)
        yield from client.update_file_range("/db", 512 * units.KiB, 64 * units.KiB)

    dfs.sim.run_process(body())
    dfs.verify_mirrors()
    dfs.verify_parity()
    # The updated block carries the spliced patch; its neighbors don't.
    blocks = dfs.namenode.file_blocks("/db")
    first = dfs.namenode.locate_block(blocks[0].block_id)
    assert first.version == 2
    second = dfs.namenode.locate_block(blocks[1].block_id)
    assert second.version == 1


def test_update_spanning_blocks_touches_both():
    dfs = raidp_cluster()
    client = dfs.client(0)

    def body():
        yield from client.write_file("/db", 2 * units.MiB)
        # Straddle the block boundary at 1 MiB.
        yield from client.update_file_range(
            "/db", units.MiB - 32 * units.KiB, 64 * units.KiB
        )

    dfs.sim.run_process(body())
    dfs.verify_parity()
    for block in dfs.namenode.file_blocks("/db"):
        assert dfs.namenode.locate_block(block.block_id).version == 2


def test_update_moves_no_block_data_over_network():
    dfs = raidp_cluster(payload_mode="tokens")
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/db", 2 * units.MiB))
    before = dfs.total_network_bytes()
    dfs.sim.run_process(
        client.update_file_range("/db", 0, 64 * units.KiB)
    )
    moved = dfs.total_network_bytes() - before
    # Only the journal acknowledgments cross the wire.
    assert moved <= 4 * dfs.config.ack_size


def test_update_journals_and_drains():
    dfs = raidp_cluster(payload_mode="tokens")
    client = dfs.client(0)

    def body():
        yield from client.write_file("/db", units.MiB)
        yield from client.update_file_range("/db", 0, 64 * units.KiB)
        yield from client.update_file_range("/db", 128 * units.KiB, 64 * units.KiB)

    dfs.sim.run_process(body())
    assert dfs.journals_empty()
    dfs.verify_parity()


def test_update_bounds_checked():
    dfs = raidp_cluster(payload_mode="tokens")
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/db", units.MiB))
    with pytest.raises(DfsError):
        dfs.sim.run_process(client.update_file_range("/db", 0, 2 * units.MiB))
    with pytest.raises(DfsError):
        dfs.sim.run_process(client.update_file_range("/db", 0, 0))


def test_stock_hdfs_rejects_in_place_updates():
    dfs = HdfsCluster(
        spec=ClusterSpec(num_nodes=4),
        config=DfsConfig(block_size=units.MiB, replication=2),
        payload_mode="tokens",
    )
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/db", units.MiB))
    with pytest.raises(DfsError, match="append-only"):
        dfs.sim.run_process(client.update_file_range("/db", 0, 1024))


def test_update_is_cheaper_than_rewrite():
    def run(mode):
        dfs = raidp_cluster(payload_mode="tokens")
        client = dfs.client(0)
        dfs.sim.run_process(client.write_file("/db", 4 * units.MiB))
        start = dfs.sim.now
        if mode == "in_place":
            dfs.sim.run_process(
                client.update_file_range("/db", 0, 64 * units.KiB)
            )
        else:
            dfs.sim.run_process(client.rewrite_file("/db"))
        return dfs.sim.now - start

    assert run("in_place") < run("rewrite") / 5


# ----------------------------------------------------------------------
# Traces.
# ----------------------------------------------------------------------
def test_zipf_weights_sum_and_skew():
    weights = zipf_weights(10)
    assert sum(weights) == pytest.approx(1.0)
    assert weights[0] > weights[-1] * 5


def test_trace_op_validation():
    with pytest.raises(ValueError):
        TraceOp("append", "/x")


def test_generate_ycsb_trace_shape():
    trace = generate_ycsb_trace(num_records=10, operations=50, seed=1)
    writes = [op for op in trace if op.kind == "write"]
    others = [op for op in trace if op.kind != "write"]
    assert len(writes) == 10
    assert len(others) == 50
    # Determinism.
    assert trace == generate_ycsb_trace(num_records=10, operations=50, seed=1)


def test_update_amplification_arithmetic():
    trace = [
        TraceOp("write", "/r", 0, units.MiB),
        TraceOp("update", "/r", 0, 64 * units.KiB),
        TraceOp("update", "/r", 0, 64 * units.KiB),
    ]
    assert update_amplification(trace) == pytest.approx(units.MiB / (64 * units.KiB))
    with pytest.raises(DfsError):
        update_amplification([TraceOp("write", "/r", 0, 1)])


def test_replay_in_place_beats_rewrite():
    trace = generate_ycsb_trace(
        num_records=6,
        record_size=2 * units.MiB,
        operations=30,
        update_fraction=0.7,
        seed=5,
    )
    results = {}
    for mode in ("in_place", "rewrite"):
        dfs = raidp_cluster(payload_mode="tokens", num_nodes=6)
        results[mode] = replay_trace(dfs, trace, mode=mode)
        dfs.verify_parity()
    assert results["in_place"].runtime < results["rewrite"].runtime
    assert (
        results["in_place"].disk_bytes_written
        < results["rewrite"].disk_bytes_written
    )


def test_replay_rejects_unknown_mode():
    dfs = raidp_cluster(payload_mode="tokens")
    with pytest.raises(ValueError):
        replay_trace(dfs, [], mode="teleport")
