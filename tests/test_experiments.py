"""Smoke tests for the experiment registry and the analytic regenerators.

The heavyweight simulation experiments (fig8/fig9/fig10/table2) are
exercised with full shape assertions by the benchmark harness under
``benchmarks/``; here we cover the registry plumbing and the fast
analytic experiments, plus one reduced-seed simulation run.
"""

import pytest

from repro.experiments.runner import (
    REGISTRY,
    ExperimentResult,
    get_experiment,
    list_experiments,
    main,
    run_experiment,
)


def test_registry_covers_every_table_and_figure():
    assert set(list_experiments()) == {
        "fig1",
        "table1",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table2",
        "ext-durability",
        "ext-updates",
        "ext-ssd",
        "ext-scale",
    }


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_analytic_experiments_run():
    for name in ("fig1", "table1", "fig7"):
        result = run_experiment(name)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        assert name in result.render()


def test_result_render_includes_paper_column():
    result = ExperimentResult(experiment="x", title="t")
    result.add("with paper", 1.5, 2.0)
    result.add("without paper", 3.0)
    text = result.render()
    assert "2.00" in text
    assert "1.50" in text
    assert "-" in text


def test_cli_lists_registry(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "fig8" in out
    assert "table2" in out


def test_cli_runs_an_experiment(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "design space" in out


def test_fig8_runs_at_reduced_scale():
    from repro.experiments.fig8_write import run

    result = run(seeds=(1,))
    rows = {label: value for label, value, _ in result.rows}
    # Core shape even with a single seed.
    assert rows["raidp opt: only superchunks"] < 1.0
    assert rows["raidp unopt: +journal"] > 5.0
