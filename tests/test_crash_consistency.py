"""Crash-consistency tests: torn writes and journal roll-forward (§3.4).

These tests construct every partial-progress state a crash can leave a
journaled write in -- record appended; parity absorbed; content stored;
any prefix of the protocol on either replica -- and check that
roll-forward always restores the cluster invariants (mirror agreement and
parity consistency) without double-applying anything.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.journal import Journal, RecordState
from repro.core.node import RaidpConfig
from repro.errors import JournalError
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def make_cluster(payload_mode="bytes"):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=5),
        config=DfsConfig(block_size=units.MiB, replication=2),
        raidp=RaidpConfig(),
        superchunk_size=4 * units.MiB,
        payload_mode=payload_mode,
    )


def allocate_block(dfs, path="/f"):
    dfs.namenode.create_file(path)
    return dfs.namenode.allocate_block(path, dfs.config.block_size, writer=None)


def torn_write(dfs, locations, steps_a, steps_b):
    """Apply a prefix of the write protocol on each replica.

    Steps (cumulative): 1 = journal record appended; 2 = + parity
    absorbed; 3 = + content stored (write 'on disk').
    """
    block = locations.block
    payload = dfs.factory.make(block.name, locations.version, block.size)
    for datanode_name, steps in zip(locations.datanodes, (steps_a, steps_b)):
        datanode = dfs.datanode_by_name(datanode_name)
        sc_id, slot = locations.sc_id, locations.slot
        old = datanode.slot_payload(sc_id, slot)
        if steps >= 1:
            datanode.lstors.primary.journal.append(
                block_name=block.name,
                sc_id=sc_id,
                slot=slot,
                old_data=old,
                new_data=payload,
                parity_delta=old.xor(payload),
                nbytes=block.size,
                now=dfs.sim.now,
                version=locations.version,
            )
        if steps >= 2:
            datanode.lstors.absorb_update(
                datanode.shard_index_of(sc_id),
                slot,
                old,
                payload,
                tag=("w", block.name, locations.version),
            )
        if steps >= 3:
            datanode.create_block_file(locations)
            datanode._install_content(locations, payload)
    return payload


def roll_forward_all(dfs):
    for datanode in dfs.datanodes:
        if datanode.lstors.primary.journal.outstanding:
            dfs.sim.run_process(datanode.roll_forward())


@pytest.mark.parametrize("steps_a", [1, 2, 3])
@pytest.mark.parametrize("steps_b", [0, 1, 2, 3])
def test_roll_forward_from_every_torn_state(steps_a, steps_b):
    dfs = make_cluster()
    locations = allocate_block(dfs)
    payload = torn_write(dfs, locations, steps_a, steps_b)
    roll_forward_all(dfs)
    dfs.verify_parity()
    for name in locations.datanodes:
        datanode = dfs.datanode_by_name(name)
        assert datanode.content_of(locations.block.name) == payload
    assert dfs.journals_empty()


def test_roll_forward_is_idempotent():
    dfs = make_cluster()
    locations = allocate_block(dfs)
    payload = torn_write(dfs, locations, 2, 0)
    roll_forward_all(dfs)
    roll_forward_all(dfs)  # second pass must be a no-op
    dfs.verify_parity()
    for name in locations.datanodes:
        assert dfs.datanode_by_name(name).content_of(locations.block.name) == payload


def test_roll_forward_after_rewrite_crash():
    """Crash during a rewrite: old content v1 durable, v2 torn."""
    dfs = make_cluster()
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", units.MiB))
    locations = dfs.namenode.locate_block(dfs.namenode.file_blocks("/f")[0].block_id)
    locations.version = 2
    payload = torn_write(dfs, locations, 2, 1)
    roll_forward_all(dfs)
    dfs.verify_parity()
    dfs.verify_mirrors()
    for name in locations.datanodes:
        datanode = dfs.datanode_by_name(name)
        assert datanode.content_of(locations.block.name) == payload
        assert datanode.version_of(locations.block.name) == 2


def test_roll_forward_of_deleted_block_just_clears():
    dfs = make_cluster()
    locations = allocate_block(dfs)
    torn_write(dfs, locations, 1, 0)
    # The file vanishes before recovery runs.
    dfs.namenode.delete_file("/f")
    roll_forward_all(dfs)
    assert dfs.journals_empty()


@settings(max_examples=20, deadline=None)
@given(
    steps_a=st.integers(min_value=1, max_value=3),
    steps_b=st.integers(min_value=0, max_value=3),
    rewrites=st.integers(min_value=0, max_value=2),
)
def test_property_roll_forward_always_restores_invariants(steps_a, steps_b, rewrites):
    dfs = make_cluster(payload_mode="tokens")
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/base", 2 * units.MiB))
    locations = allocate_block(dfs, path="/torn")
    locations.version += rewrites
    torn_write(dfs, locations, steps_a, steps_b)
    roll_forward_all(dfs)
    dfs.verify_parity()
    dfs.verify_mirrors()
    assert dfs.journals_empty()


# ----------------------------------------------------------------------
# Journal unit tests.
# ----------------------------------------------------------------------
def zero_payload():
    from repro.storage.payload import TokenPayload

    return TokenPayload.zeros()


def append_one(journal, name="blk_1", nbytes=1024):
    return journal.append(
        block_name=name,
        sc_id=0,
        slot=0,
        old_data=zero_payload(),
        new_data=zero_payload(),
        parity_delta=zero_payload(),
        nbytes=nbytes,
        now=0.0,
    )


def test_journal_state_machine_happy_path():
    journal = Journal(capacity=units.MiB)
    record = append_one(journal)
    assert record.state is RecordState.APPENDED
    journal.mark_committed(record.record_id)
    journal.mark_acked(record.record_id)
    journal.clear(record.record_id, now=1.0)
    assert journal.outstanding == 0
    assert journal.total_appends == journal.total_clears == 1


def test_journal_rejects_out_of_order_transitions():
    journal = Journal(capacity=units.MiB)
    record = append_one(journal)
    with pytest.raises(JournalError):
        journal.mark_acked(record.record_id)
    with pytest.raises(JournalError):
        journal.clear(record.record_id, now=0.0)
    journal.mark_committed(record.record_id)
    with pytest.raises(JournalError):
        journal.mark_committed(record.record_id)


def test_journal_capacity_strict_mode_raises():
    journal = Journal(capacity=1536, strict_capacity=True)
    append_one(journal, name="a", nbytes=1024)  # 1 KiB of journal space
    with pytest.raises(JournalError):
        append_one(journal, name="b", nbytes=1024)  # would exceed 1.5 KiB


def test_journal_capacity_soft_mode_counts_overflows():
    journal = Journal(capacity=1536)
    append_one(journal, name="a", nbytes=1024)
    append_one(journal, name="b", nbytes=1024)  # over capacity, admitted
    assert journal.overflows == 1
    assert journal.high_water_bytes == 2048
    assert journal.outstanding == 2


def test_journal_unknown_record_rejected():
    journal = Journal()
    with pytest.raises(JournalError):
        journal.mark_committed(42)


def test_journal_replay_candidates_oldest_first():
    journal = Journal()
    first = append_one(journal, name="a")
    second = append_one(journal, name="b")
    assert [r.record_id for r in journal.replay_candidates()] == [
        first.record_id,
        second.record_id,
    ]


def test_journal_drop_all_resets_gauge():
    journal = Journal()
    append_one(journal, name="a")
    append_one(journal, name="b")
    journal.drop_all(now=2.0)
    assert journal.outstanding == 0
    assert journal.used_bytes == 0
    assert journal.outstanding_gauge.current == 0
