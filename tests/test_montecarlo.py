"""Tests for the long-horizon Monte-Carlo durability engine (paper §2).

The load-bearing check is the MC-vs-analytic property test: in the
independent-exponential, no-LSE, no-correlated-failure regime the engine
must converge to the closed-form per-group loss rate that
``analytic_mc_mttdl`` derives under the same window semantics, for all
four scheme families.  That closed form is itself tied back to the
classic ``mttdl_*`` ladder by exact factors asserted below, so the chain
engine -> analytic_mc_mttdl -> ladder is pinned end to end.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.durability import (
    HOURS_PER_YEAR,
    mttdl_erasure,
    mttdl_replication,
)
from repro.analysis.montecarlo import (
    DurabilityEngine,
    DurabilityModelError,
    Fleet,
    Scheme,
    analytic_mc_mttdl,
    default_schemes,
)
from repro.faults import (
    CorrelatedFailureModel,
    DiskLifetimeModel,
    LatentErrorModel,
    RepairModel,
)

# ----------------------------------------------------------------------
# Validation regime: exponential lifetimes with MTTF exactly 1e4 hours,
# no latent errors, no correlated failures, and a repair window long
# enough (500 h) that double failures are common within a 10-year run.
# ----------------------------------------------------------------------
MTTF_HOURS = 1e4
WINDOW_HOURS = 500.0

VALIDATION_LIFETIME = DiskLifetimeModel(
    afr=1.0 - math.exp(-HOURS_PER_YEAR / MTTF_HOURS), weibull_shape=1.0
)
NO_LSE = LatentErrorModel(rate_per_disk_year=0.0)
NO_CORRELATION = CorrelatedFailureModel(
    rack_outage_rate_per_year=0.0, burst_rate_per_rack_year=0.0
)
VALIDATION_REPAIR = RepairModel(
    detection_hours=0.0, disk_rebuild_hours=WINDOW_HOURS, concurrent_rebuilds=64
)
VALIDATION_FLEET = Fleet(num_racks=8, disks_per_rack=8, groups=10_000)
VALIDATION_SCHEMES = (
    Scheme.replication(2),
    Scheme.replication(3),
    Scheme.raidp(lstors=1, chain_length=8),
    Scheme.erasure(4, 2),
)


def _validation_engine(seed: int) -> DurabilityEngine:
    return DurabilityEngine(
        fleet=VALIDATION_FLEET,
        schemes=VALIDATION_SCHEMES,
        lifetime=VALIDATION_LIFETIME,
        latent=NO_LSE,
        correlated=NO_CORRELATION,
        repair=VALIDATION_REPAIR,
        seed=seed,
    )


@settings(max_examples=3, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_engine_converges_to_analytic_mttdl(seed):
    """Satellite #4: seeded MC loss rates agree with analytic_mc_mttdl
    for every scheme family in the independent-exponential regime."""
    reports = _validation_engine(seed).run(trials=80, years=10.0)
    for scheme in VALIDATION_SCHEMES:
        analytic_years = analytic_mc_mttdl(
            scheme, VALIDATION_FLEET, VALIDATION_LIFETIME, VALIDATION_REPAIR
        )
        mc_years = reports[scheme.name].mttdl_years
        ratio = analytic_years / mc_years
        assert 0.80 <= ratio <= 1.25, (
            f"{scheme.name}: MC {mc_years:.1f}y vs analytic "
            f"{analytic_years:.1f}y (ratio {ratio:.3f})"
        )


def test_analytic_mc_matches_ladder_factors():
    """analytic_mc_mttdl differs from the classic serialized-rebuild
    ladder by exact, documented renewal/overlap factors."""
    renewal = (MTTF_HOURS + WINDOW_HOURS) / MTTF_HOURS
    rep2 = analytic_mc_mttdl(
        Scheme.replication(2), VALIDATION_FLEET, VALIDATION_LIFETIME, VALIDATION_REPAIR
    )
    assert rep2 == pytest.approx(
        mttdl_replication(2, MTTF_HOURS, WINDOW_HOURS) / HOURS_PER_YEAR * renewal**2
    )
    rep3 = analytic_mc_mttdl(
        Scheme.replication(3), VALIDATION_FLEET, VALIDATION_LIFETIME, VALIDATION_REPAIR
    )
    assert rep3 == pytest.approx(
        2.0 * mttdl_replication(3, MTTF_HOURS, WINDOW_HOURS) / HOURS_PER_YEAR * renewal**3
    )
    n, k = 4, 2
    ec = analytic_mc_mttdl(
        Scheme.erasure(n, k), VALIDATION_FLEET, VALIDATION_LIFETIME, VALIDATION_REPAIR
    )
    assert ec == pytest.approx(
        mttdl_erasure(n, k, MTTF_HOURS, WINDOW_HOURS)
        / HOURS_PER_YEAR
        * 2.0
        / (n + k)
        * renewal**3
    )


def test_second_lstor_extends_raidp_mttdl():
    one = analytic_mc_mttdl(
        Scheme.raidp(lstors=1, chain_length=8),
        VALIDATION_FLEET,
        VALIDATION_LIFETIME,
        VALIDATION_REPAIR,
    )
    two = analytic_mc_mttdl(
        Scheme.raidp(lstors=2, chain_length=8),
        VALIDATION_FLEET,
        VALIDATION_LIFETIME,
        VALIDATION_REPAIR,
    )
    assert two > one * 5


# ----------------------------------------------------------------------
# Determinism and chunked merging.
# ----------------------------------------------------------------------
def test_run_is_bitwise_deterministic():
    first = _validation_engine(9).run(trials=20, years=4.0)
    second = _validation_engine(9).run(trials=20, years=4.0)
    for name, report in first.items():
        other = second[name]
        assert report.expected_groups_lost == other.expected_groups_lost
        assert report.repair_gb == other.repair_gb
        assert report.unavailable_group_hours == other.unavailable_group_hours
        assert np.array_equal(report.at_risk_timeline, other.at_risk_timeline)


def test_chunked_runs_merge_to_monolithic():
    """first_trial offsets give per-trial seed streams, so a split run
    merged back together must equal the monolithic run bit for bit."""
    engine = _validation_engine(11)
    whole = engine.run(trials=24, years=4.0)
    head = engine.run(trials=9, years=4.0)
    tail = engine.run(trials=15, years=4.0, first_trial=9)
    for name, report in whole.items():
        merged = head[name].merge(tail[name])
        assert merged.trials == report.trials
        assert merged.expected_groups_lost == pytest.approx(
            report.expected_groups_lost, rel=1e-12
        )
        assert merged.repair_gb == pytest.approx(report.repair_gb, rel=1e-12)
        assert np.allclose(merged.at_risk_timeline, report.at_risk_timeline)


# ----------------------------------------------------------------------
# Full default-scheme behaviour (bursts + Lstor co-location caveat on).
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def default_reports():
    engine = DurabilityEngine(fleet=Fleet(num_racks=20, disks_per_rack=50, groups=100_000))
    return engine.run(trials=40, years=10.0)


def test_default_run_orders_schemes(default_reports):
    nines = {name: r.durability_nines for name, r in default_reports.items()}
    assert nines["rep2"] < nines["raidp"]
    assert nines["raidp"] < nines["raidp(2 lstors)"]
    # With correlated bursts destroying co-located Lstors, RAIDP does
    # *not* reach triplication -- the fixed §2 caveat's signature.
    assert nines["raidp"] < nines["rep3"]


def test_default_run_reports_are_complete(default_reports):
    assert set(default_reports) == {s.name for s in default_schemes()}
    for report in default_reports.values():
        assert report.trials == 40
        assert report.repair_gb_per_day > 0
        assert report.sim_days > 0
        assert report.at_risk_timeline.shape == (120,)
        assert report.peak_groups_at_risk >= 0


def test_erasure_pays_read_amplified_repair(default_reports):
    assert (
        default_reports["ec(6+2)"].repair_gb_per_day
        > default_reports["rep3"].repair_gb_per_day * 3
    )


def test_raidp_concedes_availability(default_reports):
    assert (
        default_reports["raidp"].unavailability
        > default_reports["rep3"].unavailability
    )


# ----------------------------------------------------------------------
# Validation errors.
# ----------------------------------------------------------------------
def test_fleet_validation():
    with pytest.raises(DurabilityModelError):
        Fleet(num_racks=0, disks_per_rack=10)
    with pytest.raises(DurabilityModelError):
        Fleet(num_racks=4, disks_per_rack=10, disk_capacity_gb=-1.0)


def test_scheme_wider_than_fleet_rejected():
    with pytest.raises(DurabilityModelError):
        DurabilityEngine(
            fleet=Fleet(num_racks=4, disks_per_rack=10),
            schemes=(Scheme.erasure(6, 2),),
        )


def test_duplicate_scheme_names_rejected():
    with pytest.raises(DurabilityModelError):
        DurabilityEngine(
            fleet=Fleet(num_racks=8, disks_per_rack=10),
            schemes=(Scheme.replication(2), Scheme.replication(2)),
        )


# ----------------------------------------------------------------------
# Shared failure-model parameters (repro.faults).
# ----------------------------------------------------------------------
def test_weibull_scale_pins_first_year_failure_to_afr():
    for shape in (0.7, 1.0, 1.5):
        model = DiskLifetimeModel(afr=0.04, weibull_shape=shape)
        p_year1 = 1.0 - math.exp(-((HOURS_PER_YEAR / model.scale_hours) ** shape))
        assert p_year1 == pytest.approx(0.04)


def test_exponential_mttf_matches_scale():
    model = DiskLifetimeModel(afr=0.02, weibull_shape=1.0)
    assert model.mttf_hours == pytest.approx(model.scale_hours)


def test_latent_error_probability_bounds():
    model = LatentErrorModel(rate_per_disk_year=0.3, scrub_interval_hours=14 * 24.0)
    p_disk = model.disk_read_error_probability()
    assert 0.0 < p_disk < 1.0
    p_block = model.block_read_error_probability(1e-6)
    assert 0.0 < p_block < p_disk
    none = LatentErrorModel(rate_per_disk_year=0.0)
    assert none.disk_read_error_probability() == 0.0
    assert none.block_read_error_probability(1e-6) == 0.0
