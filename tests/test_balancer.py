"""Tests for the background superchunk/block balancer (§3.3)."""

import pytest

from repro import units
from repro.core.balancer import Balancer
from repro.core.cluster import RaidpCluster
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def cluster(num_nodes=8, per_disk=4, payload_mode="bytes"):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=per_disk,
        payload_mode=payload_mode,
    )


def skewed_cluster(payload_mode="bytes"):
    """Force all writes onto the superchunks of two disks by freezing
    everything else, then unfreeze: instant hotspot."""
    dfs = cluster(payload_mode=payload_mode)
    hot = {"n0", "n1"}
    frozen = [
        sc_id
        for sc_id, sc in dfs.layout.superchunks.items()
        if not (sc.disks & hot)
    ]
    for sc_id in frozen:
        dfs.map.freeze(sc_id)

    def writes():
        for index, client in enumerate(dfs.clients[:4]):
            yield from client.write_file(f"/skew/f{index}", 3 * units.MiB)

    dfs.sim.run_process(writes())
    for sc_id in frozen:
        dfs.map.unfreeze(sc_id)
    return dfs


def test_skew_setup_creates_imbalance():
    dfs = skewed_cluster(payload_mode="tokens")
    balancer = Balancer(dfs)
    assert balancer.imbalance() > 1.0
    loads = balancer.disk_loads()
    assert loads["n0"] > min(loads.values())


def test_balancer_reduces_imbalance():
    dfs = skewed_cluster(payload_mode="tokens")
    balancer = Balancer(dfs, threshold=0.5)
    report = balancer.balance(max_moves=64)
    assert report.moves
    assert report.imbalance_after < report.imbalance_before
    assert report.imbalance_after <= 0.5 or len(report.moves) == 64


def test_balancer_preserves_all_invariants():
    dfs = skewed_cluster(payload_mode="bytes")
    originals = {
        loc.block.name: dfs.datanode_by_name(loc.datanodes[0]).content_of(
            loc.block.name
        )
        for loc in dfs.namenode.all_blocks()
    }
    balancer = Balancer(dfs, threshold=0.5)
    report = balancer.balance(max_moves=64)
    assert report.moves
    dfs.layout.verify()
    dfs.verify_mirrors()
    dfs.verify_parity()
    # Content survives the migration bit-for-bit.
    for loc in dfs.namenode.all_blocks():
        for home in loc.datanodes:
            assert dfs.datanode_by_name(home).content_of(loc.block.name) == originals[
                loc.block.name
            ]


def test_balancer_noop_on_balanced_cluster():
    dfs = cluster(payload_mode="tokens")

    def writes():
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/even/f{index}", 2 * units.MiB)

    dfs.sim.run_process(writes())
    balancer = Balancer(dfs, threshold=0.6)
    report = balancer.balance()
    assert report.imbalance_before <= 0.6
    assert report.moves == []


def test_balancer_respects_frozen_superchunks():
    dfs = skewed_cluster(payload_mode="tokens")
    # Freeze every superchunk (a cluster-wide recovery storm): the
    # balancer must do nothing rather than move data into recovering
    # superchunks.
    for sc_id in dfs.layout.superchunks:
        dfs.map.freeze(sc_id)
    balancer = Balancer(dfs, threshold=0.1)
    report = balancer.balance()
    assert report.moves == []


def test_moves_update_namenode_metadata():
    dfs = skewed_cluster(payload_mode="tokens")
    balancer = Balancer(dfs, threshold=0.5)
    report = balancer.balance(max_moves=8)
    moved = {name for name, _f, _t in report.moves}
    for loc in dfs.namenode.all_blocks():
        if loc.block.name in moved:
            sc = dfs.layout.superchunk(loc.sc_id)
            assert set(loc.datanodes) == set(sc.disks)
            assert dfs.map.block_at(loc.sc_id, loc.slot) == loc.block.name
