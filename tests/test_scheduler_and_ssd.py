"""Tests for the elevator disk scheduler and SSD geometry (paper §8)."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.errors import SimulationError
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec
from repro.sim.disk import Disk, DiskGeometry, ssd_geometry
from repro.sim.engine import Simulator
from repro.sim.resources import ElevatorResource
from repro.workloads.dfsio import dfsio_write


# ----------------------------------------------------------------------
# ElevatorResource.
# ----------------------------------------------------------------------
def test_elevator_grants_in_position_order():
    sim = Simulator()
    elevator = ElevatorResource(sim)
    order = []

    def holder():
        grant = yield elevator.request(0)
        yield sim.timeout(1.0)
        elevator.release(grant)

    def rider(position):
        yield sim.timeout(0.1)  # queue up while the holder works
        grant = yield elevator.request(position)
        order.append(position)
        elevator.release(grant)

    sim.process(holder())
    for position in (500, 100, 900, 300):
        sim.process(rider(position))
    sim.run()
    assert order == [100, 300, 500, 900]


def test_elevator_wraps_like_c_look():
    sim = Simulator()
    elevator = ElevatorResource(sim)
    order = []

    def holder():
        grant = yield elevator.request(600)  # head parked high
        yield sim.timeout(1.0)
        elevator.release(grant)

    def rider(position):
        yield sim.timeout(0.1)
        grant = yield elevator.request(position)
        order.append(position)
        elevator.release(grant)

    sim.process(holder())
    for position in (100, 700, 50, 900):
        sim.process(rider(position))
    sim.run()
    # Sweep up from 600 (700, 900), then wrap to the bottom (50, 100).
    assert order == [700, 900, 50, 100]


def test_elevator_release_errors():
    sim = Simulator()
    elevator = ElevatorResource(sim)

    def body():
        grant = yield elevator.request(0)
        elevator.release(grant)
        elevator.release(grant)

    sim.process(body())
    with pytest.raises(SimulationError):
        sim.run()


# ----------------------------------------------------------------------
# Elevator-scheduled disk.
# ----------------------------------------------------------------------
def test_elevator_disk_reduces_seek_time():
    """With queue depth (batched async submission, as a writeback layer
    produces), the elevator sorts distant regions into sweeps where FIFO
    ping-pongs between them."""

    def run(scheduler):
        sim = Simulator()
        disk = Disk(sim, DiskGeometry(), name="d", scheduler=scheduler)

        def one_io(offset):
            yield from disk.write(offset, units.MiB)

        # Interleaved submission order across three distant regions.
        for i in range(6):
            for base in (0, 500 * units.GiB, 1000 * units.GiB):
                sim.process(one_io(base + i * units.MiB))
        sim.run()
        return disk.stats.seek_seconds

    assert run("elevator") < run("fifo") / 2


def test_unknown_scheduler_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Disk(sim, scheduler="cfq")


def test_elevator_cluster_runs_correctly():
    """A cluster on elevator-scheduled disks behaves identically in the
    content plane.  (Its *timing* benefit needs queue depth; the RAIDP
    write paths issue I/O serially per stream, so runtimes match FIFO --
    see the raw-disk test above for the scheduling effect itself.)"""
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8, disk_scheduler="elevator"),
        config=DfsConfig(replication=2),
        raidp=RaidpConfig(),
        payload_mode="tokens",
    )
    result = dfsio_write(dfs, units.GiB)
    assert result.runtime > 0
    dfs.verify_parity()
    dfs.verify_mirrors()


# ----------------------------------------------------------------------
# SSD geometry.
# ----------------------------------------------------------------------
def test_ssd_random_io_is_cheap():
    sim = Simulator()
    ssd = Disk(sim, ssd_geometry(), name="ssd")

    def body():
        sequential = yield from ssd.write(0, units.MiB)
        random = yield from ssd.write(500 * units.GB, units.MiB)
        return sequential, random

    sequential, random = sim.run_process(body())
    assert random < sequential * 1.1  # near-parity, unlike an HDD


def test_ssd_shrinks_raidp_random_io_penalty():
    """Paper §8: 'upgrading to SSDs will likely reduce the amount of
    performance impact that random I/O currently has in our workloads.'
    The unoptimized/optimized gap collapses on flash."""

    def gap(geometry):
        runtimes = {}
        for optimized in (True, False):
            dfs = RaidpCluster(
                spec=ClusterSpec(num_nodes=8, disk_geometry=geometry),
                config=DfsConfig(replication=2),
                raidp=RaidpConfig(
                    optimized=optimized,
                    enable_parity=False,
                    enable_journal=False,
                ),
                payload_mode="tokens",
            )
            runtimes[optimized] = dfsio_write(dfs, units.GiB).runtime
        return runtimes[False] / runtimes[True]

    hdd_gap = gap(DiskGeometry())
    ssd_gap = gap(ssd_geometry())
    assert ssd_gap < hdd_gap
    assert ssd_gap < 1.3  # near-parity on flash
