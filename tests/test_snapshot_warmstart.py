"""Warm-start snapshots and the task-grain decomposition.

The acceptance property of the warm-start layer: a snapshot-restored
cluster is *indistinguishable* from a cold-built one -- bitwise-identical
experiment fingerprints, at any job count, in any pool start-method.
These tests pin that property on the cheap rows of ``table2`` and
``ext-scale``, plus the structural guarantees (quiescence gating, keyed
staleness, phase-split equivalence) that make it hold.
"""

import pickle

import pytest

from repro import units
from repro.core.recovery import (
    RecoveryManager,
    RecoveryOptions,
    simulate_raid6_read_phase,
    simulate_raid6_rebuild,
    simulate_raid6_writeback_phase,
)
from repro.errors import SimulationError
from repro.experiments.common import Scale, build_raidp, build_raidp_warm
from repro.sim import snapshot
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _fresh_store():
    """Isolate every test from the process-wide snapshot store."""
    snapshot.GLOBAL_STORE.clear()
    yield
    snapshot.GLOBAL_STORE.clear()


def _recover(dfs, lock_mode="byte_range", chunk=64 * units.MiB, nic_index=0):
    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(
        "n0",
        "n1",
        options=RecoveryOptions(
            lock_mode=lock_mode, chunk_size=chunk, nic_index=nic_index
        ),
        remirror_rest=False,
        install=False,
    )
    return report.duration


# ----------------------------------------------------------------------
# Core identity: cold-built vs snapshot-restored clusters.
# ----------------------------------------------------------------------
def test_cold_vs_warm_recovery_bitwise_identical():
    scale = Scale()
    cold = _recover(build_raidp(scale, seed=1))
    warm_first = _recover(build_raidp_warm(scale, seed=1))  # cold build + capture
    warm_again = _recover(build_raidp_warm(scale, seed=1))  # pure restore
    assert cold == warm_first == warm_again


def test_restored_clusters_share_nothing():
    scale = Scale()
    first = build_raidp_warm(scale, seed=1)
    second = build_raidp_warm(scale, seed=1)
    assert first is not second
    assert first.sim is not second.sim
    # Mutating one must not leak into the other.
    _recover(first)
    assert second.sim.now == 0.0


def test_snapshot_requires_quiescence():
    sim = Simulator()
    sim.timeout(1.0)
    with pytest.raises(SimulationError):
        pickle.dumps(sim)


def test_snapshot_keys_isolate_parameters():
    keys = {
        snapshot.snapshot_key("build", nodes=16, seed=1),
        snapshot.snapshot_key("build", nodes=16, seed=2),
        snapshot.snapshot_key("build", nodes=64, seed=1),
        snapshot.snapshot_key("other", nodes=16, seed=1),
    }
    assert len(keys) == 4
    # Every key embeds the source-tree fingerprint: stale snapshots from
    # different code are a key miss by construction.
    assert all(key.endswith(snapshot.code_fingerprint()) for key in keys)


def test_warm_start_env_kill_switch(monkeypatch):
    monkeypatch.setenv(snapshot.WARM_START_ENV, "0")
    scale = Scale()
    build_raidp_warm(scale, seed=1)
    assert snapshot.GLOBAL_STORE.hits == 0
    assert snapshot.GLOBAL_STORE.misses == 0


def test_tracer_bypasses_snapshot_store():
    from repro.obs.tracer import Tracer, capture as trace_capture

    scale = Scale()
    with trace_capture(Tracer()):
        build_raidp_warm(scale, seed=1)
    assert snapshot.GLOBAL_STORE.hits == 0
    assert snapshot.GLOBAL_STORE.misses == 0


def test_spill_dir_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv(snapshot.SNAPSHOT_DIR_ENV, str(tmp_path))
    store = snapshot.SnapshotStore()
    key = snapshot.snapshot_key("spill-test", n=1)
    store.put(key, b"payload")
    fresh = snapshot.SnapshotStore()  # simulates a new process
    assert fresh.get(key) == b"payload"


# ----------------------------------------------------------------------
# Phase snapshots: memoizing build + warmup behind a boundary-time key.
# ----------------------------------------------------------------------
def test_phase_key_embeds_boundary_time():
    base = snapshot.snapshot_key("phase-test", n=1)
    key = snapshot.phase_key(base, 12.5)
    assert key.startswith(base)
    # repr()-exact: boundaries differing in the last ulp are distinct keys.
    assert key != snapshot.phase_key(base, 12.5 + 2**-40)


def test_phase_boundary_requires_a_simulator():
    with pytest.raises(SimulationError):
        snapshot.phase_boundary(object())


def test_get_or_build_phase_simulates_warmup_once():
    from types import SimpleNamespace

    base = snapshot.snapshot_key("phase-unit", n=1)
    calls = []

    def build():
        calls.append(1)
        return SimpleNamespace(sim=SimpleNamespace(now=42.0), payload=[1, 2, 3])

    first = snapshot.GLOBAL_STORE.get_or_build_phase(base, build)
    assert calls == [1]
    assert snapshot.GLOBAL_STORE.resolve_phase(base) == snapshot.phase_key(base, 42.0)
    second = snapshot.GLOBAL_STORE.get_or_build_phase(base, build)
    assert calls == [1]  # builder + warmup ran exactly once
    assert second is not first and second.sim is not first.sim
    assert second.payload == [1, 2, 3]
    assert second.sim.now == 42.0


def test_get_or_build_phase_respects_kill_switch(monkeypatch):
    from types import SimpleNamespace

    monkeypatch.setenv(snapshot.WARM_START_ENV, "0")
    base = snapshot.snapshot_key("phase-kill", n=1)
    calls = []

    def build():
        calls.append(1)
        return SimpleNamespace(sim=SimpleNamespace(now=1.0))

    snapshot.GLOBAL_STORE.get_or_build_phase(base, build)
    snapshot.GLOBAL_STORE.get_or_build_phase(base, build)
    assert calls == [1, 1]
    assert snapshot.GLOBAL_STORE.hits == 0
    assert snapshot.GLOBAL_STORE.misses == 0


def test_phase_index_spills_across_processes(tmp_path, monkeypatch):
    from types import SimpleNamespace

    monkeypatch.setenv(snapshot.SNAPSHOT_DIR_ENV, str(tmp_path))
    base = snapshot.snapshot_key("phase-spill", n=1)
    store = snapshot.SnapshotStore()
    store.get_or_build_phase(
        base, lambda: SimpleNamespace(sim=SimpleNamespace(now=7.0), data="x")
    )

    fresh = snapshot.SnapshotStore()  # simulates a new process
    calls = []

    def rebuild():
        calls.append(1)
        return SimpleNamespace(sim=SimpleNamespace(now=7.0), data="x")

    restored = fresh.get_or_build_phase(base, rebuild)
    assert calls == []  # warm-started across the "process" boundary
    assert restored.data == "x"
    assert restored.sim.now == 7.0


def test_core_classes_restore_through_inline_state():
    """Snapshot-restored objects must keep CPython's inline attribute
    storage (the default pickle path materializes ``__dict__`` and makes
    every subsequent attribute read measurably slower)."""
    from repro.core.cluster import RaidpCluster
    from repro.hdfs.config import DfsConfig
    from repro.sim.engine import Simulator as Sim
    from repro.sim.snapshot import InlineState

    assert issubclass(RaidpCluster, InlineState)
    assert RaidpCluster.__setstate__ is InlineState.__setstate__
    cfg = pickle.loads(pickle.dumps(DfsConfig(replication=2)))
    assert cfg.replication == 2  # frozen dataclass survives object.__setattr__
    del Sim  # silence linters: imported to prove no InlineState (slots path)


# ----------------------------------------------------------------------
# Warm-vs-cold identity at the experiment level.
# ----------------------------------------------------------------------
def test_table2_warm_vs_cold_rows_identical(monkeypatch):
    from repro.experiments import table2_recovery as t2

    def rows(enabled):
        monkeypatch.setenv(snapshot.WARM_START_ENV, "1" if enabled else "0")
        snapshot.GLOBAL_STORE.clear()
        results = {}
        for key in _table2_cheap_keys():
            deps = {dep: results[dep] for dep in t2.task_deps(key)}
            results[key] = t2.run_task(key, deps=deps)
        return results

    warm = rows(True)
    assert snapshot.GLOBAL_STORE.hits > 0  # the sweep restored snapshots
    assert rows(False) == warm


@pytest.mark.parametrize("name", ["fig8", "fig9", "fig10"])
def test_figure_rows_warm_vs_cold_identical(name, monkeypatch):
    """fig8/9/10 emit bitwise-identical rows with memoization on.

    Three passes: a first warm pass (populates the store; misses return
    the built clusters), a second warm pass (every build/phase restored
    from snapshots), and a cold pass with the store disabled.  All three
    row sets must match exactly.
    """
    from repro.experiments.parallel import run_many

    def run_once():
        (result,) = run_many([name], jobs=1, seeds=(1,))
        return result.rows

    monkeypatch.setenv(snapshot.WARM_START_ENV, "1")
    snapshot.GLOBAL_STORE.clear()
    first = run_once()
    restored = run_once()
    assert snapshot.GLOBAL_STORE.hits > 0  # second pass ran from snapshots
    monkeypatch.setenv(snapshot.WARM_START_ENV, "0")
    snapshot.GLOBAL_STORE.clear()
    cold = run_once()
    assert first == restored == cold


# ----------------------------------------------------------------------
# RAID-6 phase split: two simulators chained on the boundary time must
# reproduce the monolithic schedule exactly.
# ----------------------------------------------------------------------
def test_raid6_phase_split_matches_monolith():
    kwargs = dict(
        data_per_disk=16 * units.GiB,
        surviving_disks=14,
        chunk_size=64 * units.MiB,
        nic_rate=units.gbps(10),
    )
    monolith = simulate_raid6_rebuild(**kwargs)
    boundary = simulate_raid6_read_phase(**kwargs)
    split = simulate_raid6_writeback_phase(boundary, **kwargs)
    assert 0.0 < boundary < split
    assert split == monolith  # bitwise, not approx


# ----------------------------------------------------------------------
# Experiment-level identity across job counts and start methods.
# ----------------------------------------------------------------------
def _table2_cheap_keys():
    from repro.experiments import table2_recovery as t2

    return [
        key
        for key in t2.tasks()
        if (key[2] if key[0] == "raidp" else key[1]) == 64 * units.MiB
    ]


def test_table2_cheap_rows_jobs1_vs_jobs2_identical():
    from repro.experiments.parallel import TaskSpec, run_specs

    specs = [
        TaskSpec("repro.experiments.table2_recovery", key, False)
        for key in _table2_cheap_keys()
    ]
    assert run_specs(specs, jobs=1) == run_specs(specs, jobs=2)


def test_ext_scale_split_matches_legacy_single_sim():
    from repro.experiments import ext_scale

    legacy = ext_scale.run_task(("raidp", 16, 1))
    write = ext_scale.run_task(("raidp", 16, 1, "write"))
    final = ext_scale.run_task(
        ("raidp", 16, 1, "recovery"),
        deps={("raidp", 16, 1, "write"): write},
    )
    # write s, net GB/node, recovery s -- all bitwise; the phase-split
    # run's 4th element is the flight-recorder SLO digest, which the
    # legacy single-sim path (no sampler) does not produce.
    assert final[:3] == legacy
    assert set(final[3]) == {"write", "recovery"}


def test_ext_scale_spawn_context_exercises_snapshot_pickling(monkeypatch):
    """A spawn-context pool run: the write phase's cluster snapshot must
    survive two pickle crossings (worker -> parent -> worker) and still
    produce the sequential answer bit-for-bit."""
    from repro.experiments import ext_scale
    from repro.experiments.parallel import TaskSpec, run_specs

    specs = [
        TaskSpec("repro.experiments.ext_scale", ("raidp", 16, 1, "write"), False),
        TaskSpec("repro.experiments.ext_scale", ("raidp", 16, 1, "recovery"), False),
        TaskSpec("repro.experiments.ext_scale", ("hdfs3", 16, 1), False),
    ]
    sequential = run_specs(specs, jobs=1)
    monkeypatch.setenv("RAIDP_MP_CONTEXT", "spawn")
    spawned = run_specs(specs, jobs=2)
    # The write task's third element is the snapshot blob itself; compare
    # measurements, then prove the blobs restore to equivalent clusters
    # by comparing the recovery rows they produced.
    assert spawned[0][:2] == sequential[0][:2]
    assert spawned[1] == sequential[1]
    assert spawned[2] == sequential[2]


# ----------------------------------------------------------------------
# Parallel runner: dependency and cost plumbing.
# ----------------------------------------------------------------------
def test_run_specs_rejects_missing_dependency():
    from repro.experiments.parallel import TaskSpec, run_specs

    specs = [
        TaskSpec(
            "repro.experiments.table2_recovery",
            ("raid6", 64 * units.MiB, 0, "write"),
            False,
        )
    ]
    with pytest.raises(ValueError, match="depends on"):
        run_specs(specs, jobs=1)


def test_task_cost_orders_stragglers_first():
    from repro.experiments import table2_recovery as t2

    costs = {key: t2.task_cost(key) for key in t2.tasks()}
    heaviest = max(costs, key=costs.get)
    assert heaviest == ("raid6", 4 * units.MiB, 0, "read")
