"""Tests for the deterministic hot-path profiler.

The profiler's contract (see :mod:`repro.obs.simprofile`): attribution
is an *observer* -- a profiled run executes the bit-identical schedule
of an unprofiled one -- and the deterministic columns (events, simulated
seconds, bucket keys) reproduce exactly across repeated profiled runs.
Wall-clock samples are host measurements and are only checked for
well-formedness.
"""

from __future__ import annotations

import json

from repro.obs import simprofile
from repro.obs.simprofile import SimProfiler, classify_code
from repro.obs.taxonomy import is_registered
from repro.sim.engine import Simulator
from repro.units import MiB


def _dfsio_run():
    """One small multi-layer workload; returns (runtime, journal stats)."""
    from repro.experiments.common import Scale, build_raidp
    from repro.workloads.dfsio import dfsio_write

    dfs = build_raidp(Scale(), seed=1)
    result = dfsio_write(dfs, 64 * MiB)
    return (result.runtime, dfs.sim.now, dfs.sim._seq)


def test_profiled_run_is_bitwise_identical_to_unprofiled():
    baseline = _dfsio_run()
    with simprofile.capture() as profiler:
        profiled = _dfsio_run()
    assert profiled == baseline
    assert profiler.totals()["events"] > 0


def test_deterministic_columns_reproduce_exactly():
    with simprofile.capture() as first:
        _dfsio_run()
    with simprofile.capture() as second:
        _dfsio_run()

    def deterministic(profiler):
        return {
            key: (stats.events, stats.sim_seconds)
            for key, stats in profiler.buckets.items()
        }

    assert deterministic(first) == deterministic(second)


def test_muted_profiler_collects_nothing():
    profiler = SimProfiler()
    profiler.enabled = False
    with simprofile.capture(profiler):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)

        sim.process(body())
        sim.run()
    assert len(profiler) == 0


def test_classify_code_maps_modules_to_registered_categories():
    from repro.core import recovery
    from repro.sim import disk, network

    cases = [
        (disk.Disk._io, "disk", "disk:Disk._io"),
        (network.Switch.transfer, "net", "network:Switch.transfer"),
        (
            recovery.RecoveryManager.double_failure_body,
            "recovery",
            "recovery:RecoveryManager.double_failure_body",
        ),
        (classify_code, "engine", "simprofile:classify_code"),
    ]
    for func, category, label in cases:
        got_category, got_label = classify_code(func.__code__)
        assert got_category == category
        assert got_label == label
        assert is_registered(got_category)


def test_classify_code_never_invents_categories():
    code = compile("pass", "/somewhere/else/entirely.py", "exec")
    category, label = classify_code(code)
    assert category == "engine"
    assert is_registered(category)


def test_ranked_report_orders_by_wall_then_events():
    profiler = SimProfiler()
    profiler.record(("disk", "disk:a"), 1.0, 0.5)
    profiler.record(("net", "network:b"), 1.0, 2.0)
    profiler.record(("hdfs", "client:c"), 1.0, 0.5)
    profiler.record(("hdfs", "client:c"), 1.0, 0.0)
    ranked = profiler.ranked()
    assert [b.callsite for b in ranked] == ["network:b", "client:c", "disk:a"]


def test_run_slice_resolves_task_dependencies():
    from repro.tools.profile import run_slice

    tasks_run, wall = run_slice("table2", max_tasks=2)
    assert tasks_run == 2
    assert wall > 0.0


def test_cli_report_and_json_export(tmp_path, capsys):
    from repro.tools.profile import main

    out = tmp_path / "profile.json"
    assert main(["table2", "--tasks", "1", "--json", str(out)]) == 0
    text = capsys.readouterr().out
    assert "top hot paths: table2" in text
    report = json.loads(out.read_text())
    assert report["experiment"] == "table2"
    assert report["tasks"] == 1
    assert report["totals"]["events"] > 0
    assert report["buckets"], "expected at least one hot-path bucket"
    for bucket in report["buckets"]:
        assert is_registered(bucket["category"])


def test_step_summary_written_when_env_set(tmp_path, monkeypatch):
    from repro.tools.profile import main

    summary = tmp_path / "summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    assert main(["table2", "--tasks", "1"]) == 0
    content = summary.read_text()
    assert "| # | category | callsite |" in content
