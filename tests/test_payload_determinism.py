"""Cross-process payload determinism (regression for the RDP001 fix).

``ContentFactory.make`` once seeded its RNG with
``hash((seed, name, version))`` -- but ``hash()`` of strings is
randomized per process by ``PYTHONHASHSEED``, so two processes (or a
parallel-runner worker and its parent) generated *different* block
contents for the same logical block.  The fix derives the seed via
``zlib.crc32`` (stable by specification).  These tests pin that down by
actually spawning interpreters with different hash seeds.
"""

import subprocess
import sys
from pathlib import Path

from repro import units
from repro.storage.payload import ContentFactory, TokenPayload, _stable_seed

SRC = str(Path(__file__).resolve().parent.parent / "src")

_CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.storage.payload import ContentFactory
factory = ContentFactory(seed=7, mode="bytes")
payload = factory.make("blk_0001", 3, 65536)
print(payload.checksum())
"""


def _child_checksum(hashseed):
    result = subprocess.run(
        [sys.executable, "-c", _CHILD.format(src=SRC)],
        capture_output=True,
        text=True,
        env={"PYTHONHASHSEED": str(hashseed), "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return result.stdout.strip()


def test_payload_checksum_stable_across_hash_seeds():
    checksums = {_child_checksum(seed) for seed in (0, 1, 424242)}
    assert len(checksums) == 1, (
        "payload content depends on PYTHONHASHSEED; "
        f"got distinct checksums {checksums}"
    )


def test_child_process_matches_parent():
    factory = ContentFactory(seed=7, mode="bytes")
    parent = factory.make("blk_0001", 3, 65536).checksum()
    assert str(parent) == _child_checksum(12345)


def test_stable_seed_is_pure_and_collision_spread():
    assert _stable_seed(7, "blk_0001", 3) == _stable_seed(7, "blk_0001", 3)
    seeds = {
        _stable_seed(s, name, v)
        for s in (0, 7)
        for name in ("blk_0001", "blk_0002")
        for v in (1, 2)
    }
    assert len(seeds) == 8  # domain separation: no accidental collisions


def test_token_payload_checksum_ignores_token_order():
    a = TokenPayload(tokens=frozenset({("x", 1), ("y", 2)}))
    b = TokenPayload(tokens=frozenset({("y", 2), ("x", 1)}))
    assert a.checksum() == b.checksum()
    c = TokenPayload(tokens=frozenset({("x", 2), ("y", 2)}))
    assert a.checksum() != c.checksum()


def test_same_logical_block_same_bytes():
    one = ContentFactory(seed=9, mode="bytes").make("b", 1, units.KiB)
    two = ContentFactory(seed=9, mode="bytes").make("b", 1, units.KiB)
    assert one.checksum() == two.checksum()
    assert (one.data == two.data).all()
