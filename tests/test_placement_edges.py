"""Edge-case tests for placement policies and the superchunk map."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.layout import Layout, LayoutSpec, rotational_layout
from repro.core.placement import RaidpPlacement, SuperchunkMap
from repro.errors import CapacityError, PlacementError
from repro.hdfs.block import Block
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec

SPEC = LayoutSpec(superchunk_size=2 * units.MiB, block_size=units.MiB)


class FakeDn:
    def __init__(self, name, alive=True):
        self.name = name
        self.alive = alive


def make_placement(num_disks=4):
    layout = rotational_layout(num_disks, spec=SPEC)
    sc_map = SuperchunkMap(layout)
    return layout, sc_map, RaidpPlacement(layout, sc_map)


def block(block_id=0, size=units.MiB):
    return Block(block_id=block_id, path="/f", index=0, size=size)


def test_superchunk_map_slot_lifecycle():
    layout, sc_map, _ = make_placement()
    sc_id = next(iter(layout.superchunks))
    assert sc_map.free_slots(sc_id) == 2
    first = sc_map.allocate_slot(sc_id, "blk_a")
    second = sc_map.allocate_slot(sc_id, "blk_b")
    assert (first, second) == (0, 1)
    with pytest.raises(CapacityError):
        sc_map.allocate_slot(sc_id, "blk_c")
    sc_map.release_slot(sc_id, first)
    assert sc_map.allocate_slot(sc_id, "blk_c") == 0  # lowest free slot
    assert sc_map.block_at(sc_id, 0) == "blk_c"
    assert sc_map.blocks_in(sc_id) == {0: "blk_c", 1: "blk_b"}


def test_placement_needs_a_live_pair():
    layout, _sc_map, placement = make_placement()
    datanodes = [FakeDn(d, alive=(d == "d0")) for d in layout.disks]
    with pytest.raises(PlacementError):
        placement.choose_targets(block(), None, datanodes)


def test_placement_fills_cluster_to_capacity_then_fails():
    layout, sc_map, placement = make_placement(num_disks=3)
    datanodes = [FakeDn(d) for d in layout.disks]
    total_slots = len(layout.superchunks) * sc_map.slots_per_superchunk
    for index in range(total_slots):
        placement.choose_targets(block(index), None, datanodes)
    with pytest.raises(PlacementError):
        placement.choose_targets(block(999), None, datanodes)


def test_placement_release_returns_slot():
    layout, sc_map, placement = make_placement()
    datanodes = [FakeDn(d) for d in layout.disks]
    locations = placement.choose_targets(block(1), None, datanodes)
    used_before = sc_map.used_slots(locations.sc_id)
    placement.release(locations)
    assert sc_map.used_slots(locations.sc_id) == used_before - 1


def test_placement_balances_disk_load():
    layout, sc_map, placement = make_placement(num_disks=6)
    datanodes = [FakeDn(d) for d in layout.disks]
    for index in range(12):
        placement.choose_targets(block(index), None, datanodes)
    loads = [sc_map.load_of_disk(d) for d in layout.disks]
    assert max(loads) - min(loads) <= 1


def test_raidp_cluster_rejects_oversize_block():
    from repro.errors import DfsError

    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=4),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        payload_mode="tokens",
    )
    with pytest.raises(DfsError):
        dfs.namenode.allocate_block("/missing", 2 * units.MiB)


def test_namenode_rejects_duplicate_datanode_registration():
    from repro.errors import DfsError

    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=4),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        payload_mode="tokens",
    )
    with pytest.raises(DfsError):
        dfs.namenode.register_datanode(dfs.datanodes[0])


def test_layout_render_rows_align_with_slots():
    layout = Layout(["a", "b", "c"], SPEC)
    layout.add_superchunk("a", "b")
    layout.add_superchunk("b", "c")
    art = layout.render()
    lines = art.splitlines()
    assert lines[0].split() == ["a", "b", "c"]
    assert len(lines) == 3  # header + two slot rows (disk b holds 2)
