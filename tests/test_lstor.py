"""Unit and property tests for Lstors and stacked Lstors (paper §3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.lstor import Lstor, LstorStack
from repro.errors import LstorFailedError
from repro.sim.engine import Simulator
from repro.storage.payload import BytesPayload, ContentFactory, TokenPayload

BLOCK = 1024


def make_lstor(mode="bytes"):
    sim = Simulator()
    factory = ContentFactory(mode=mode)
    return sim, factory, Lstor(sim, factory, name="L0", block_size=BLOCK)


def make_stack(parity_count=2, data_shards=5):
    sim = Simulator()
    factory = ContentFactory(mode="bytes")
    return (
        sim,
        factory,
        LstorStack(
            sim,
            factory,
            name="S",
            block_size=BLOCK,
            data_shards=data_shards,
            parity_count=parity_count,
        ),
    )


# ----------------------------------------------------------------------
# Single Lstor.
# ----------------------------------------------------------------------
def test_parity_starts_zero():
    _sim, _factory, lstor = make_lstor()
    assert lstor.parity_block(0).is_zero()


def test_absorb_updates_parity():
    _sim, factory, lstor = make_lstor()
    payload = factory.make("a", 1, BLOCK)
    lstor.absorb(0, factory.zero(BLOCK).xor(payload))
    assert lstor.parity_block(0) == payload
    # A second superchunk's block at the same slot XORs in.
    other = factory.make("b", 1, BLOCK)
    lstor.absorb(0, factory.zero(BLOCK).xor(other))
    assert lstor.parity_block(0) == payload.xor(other)


def test_absorb_tag_dedup():
    _sim, factory, lstor = make_lstor()
    delta = factory.make("a", 1, BLOCK)
    lstor.absorb(0, delta, tag="t1")
    lstor.absorb(0, delta, tag="t1")  # replay: must be a no-op
    assert lstor.parity_block(0) == delta
    lstor.absorb(0, delta, tag="t2")  # different tag applies
    assert lstor.parity_block(0).is_zero()


def test_failed_lstor_raises():
    _sim, factory, lstor = make_lstor()
    lstor.fail()
    with pytest.raises(LstorFailedError):
        lstor.parity_block(0)
    with pytest.raises(LstorFailedError):
        lstor.absorb(0, factory.zero(BLOCK))


def test_absorb_timed_charges_transfer_time():
    sim, factory, lstor = make_lstor()

    def body():
        yield from lstor.absorb_timed(0, factory.make("a", 1, BLOCK), BLOCK)

    sim.run_process(body())
    assert sim.now == pytest.approx(BLOCK / lstor.write_rate)
    assert lstor.stats_bytes_absorbed == BLOCK


def test_journal_write_time_scales():
    _sim, _factory, lstor = make_lstor()
    assert lstor.journal_write_time(2 * BLOCK) == 2 * lstor.journal_write_time(BLOCK)


def test_token_mode_lstor():
    _sim, factory, lstor = make_lstor(mode="tokens")
    a = factory.make("a", 1, BLOCK)
    lstor.absorb(3, factory.zero(BLOCK).xor(a))
    assert lstor.parity_block(3) == a


# ----------------------------------------------------------------------
# Stacked Lstors (Reed-Solomon rows).
# ----------------------------------------------------------------------
def test_stack_requires_at_least_one():
    sim = Simulator()
    factory = ContentFactory(mode="bytes")
    with pytest.raises(ValueError):
        LstorStack(sim, factory, "S", BLOCK, data_shards=4, parity_count=0)


def test_stack_rejects_symbolic_mode_for_rs():
    sim = Simulator()
    factory = ContentFactory(mode="tokens")
    with pytest.raises(ValueError):
        LstorStack(sim, factory, "S", BLOCK, data_shards=4, parity_count=2)


def test_stack_single_parity_allows_tokens():
    sim = Simulator()
    factory = ContentFactory(mode="tokens")
    stack = LstorStack(sim, factory, "S", BLOCK, data_shards=4, parity_count=1)
    payload = factory.make("a", 1, BLOCK)
    stack.absorb_update(0, 0, factory.zero(BLOCK), payload)
    rebuilt = stack.reconstruct_block(0, {}, missing_shards=[0])
    assert rebuilt[0] == payload


def test_stack_recovers_two_missing_superchunks():
    _sim, factory, stack = make_stack(parity_count=2, data_shards=5)
    contents = {}
    for shard in range(5):
        payload = factory.make(f"s{shard}", 1, BLOCK)
        stack.absorb_update(shard, 0, factory.zero(BLOCK), payload)
        contents[shard] = payload
    survivors = {s: p for s, p in contents.items() if s not in (1, 3)}
    rebuilt = stack.reconstruct_block(0, survivors, missing_shards=[1, 3])
    assert rebuilt[1] == contents[1]
    assert rebuilt[3] == contents[3]


def test_stack_survives_one_lstor_failure():
    _sim, factory, stack = make_stack(parity_count=2, data_shards=4)
    contents = {}
    for shard in range(4):
        payload = factory.make(f"s{shard}", 1, BLOCK)
        stack.absorb_update(shard, 0, factory.zero(BLOCK), payload)
        contents[shard] = payload
    stack.lstors[0].fail()
    survivors = {s: p for s, p in contents.items() if s != 2}
    rebuilt = stack.reconstruct_block(0, survivors, missing_shards=[2])
    assert rebuilt[2] == contents[2]


def test_stack_with_all_lstors_dead_raises():
    _sim, factory, stack = make_stack(parity_count=1, data_shards=3)
    stack.lstors[0].fail()
    with pytest.raises(LstorFailedError):
        stack.reconstruct_block(0, {}, missing_shards=[0])


def test_stack_handles_unwritten_shards_as_zero():
    """Superchunk slots never written count as zeros in the RS code."""
    _sim, factory, stack = make_stack(parity_count=2, data_shards=5)
    written = factory.make("only", 1, BLOCK)
    stack.absorb_update(2, 0, factory.zero(BLOCK), written)
    # Shards 0,1,3,4 were never written; recover shard 2 from parity alone.
    rebuilt = stack.reconstruct_block(0, {}, missing_shards=[2])
    assert rebuilt[2] == written


@settings(max_examples=15, deadline=None)
@given(
    parity_count=st.integers(min_value=1, max_value=3),
    updates=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_stack_recovers_after_random_updates(parity_count, updates, seed):
    """After arbitrary update sequences, any single superchunk (and up to
    ``parity_count`` of them) is reconstructible."""
    import random

    rng = random.Random(seed)
    data_shards = 5
    _sim, factory, stack = make_stack(parity_count=parity_count, data_shards=data_shards)
    current = {s: factory.zero(BLOCK) for s in range(data_shards)}
    for version in range(1, updates + 1):
        shard = rng.randrange(data_shards)
        new = factory.make(f"s{shard}", version, BLOCK)
        stack.absorb_update(shard, 0, current[shard], new)
        current[shard] = new
    missing = rng.sample(range(data_shards), k=min(parity_count, data_shards))
    survivors = {s: p for s, p in current.items() if s not in missing}
    rebuilt = stack.reconstruct_block(0, survivors, missing_shards=list(missing))
    for shard in missing:
        assert rebuilt[shard] == current[shard]
