"""Differential tests: incremental fair-share solver vs the reference.

The incremental allocator (per-port registries, dirty-component re-solve,
lazy completion heap) must allocate the same max-min rates as the
retained rebuild-the-world reference solver on any sequence of flow
arrivals, departures, and NIC-rate changes.  These tests drive both
solvers through identical randomized histories and compare rates at
every step, plus the degenerate topologies and the accounting bugfixes.
"""

import random

import pytest

from repro import units
from repro.sim.engine import Simulator
from repro.sim.network import Nic, Switch

GBPS = units.gbps(1)


def _build(solver, rates):
    sim = Simulator()
    switch = Switch(sim, solver=solver)
    nics = [switch.attach(Nic(f"n{i}", rate)) for i, rate in enumerate(rates)]
    return sim, switch, nics


def _random_script(rng, num_nics, num_ops):
    """A reproducible history: (time, op, args) tuples in time order."""
    script = []
    now = 0.0
    for _ in range(num_ops):
        now += rng.uniform(0.0, 0.4)
        kind = rng.random()
        if kind < 0.75:
            src = rng.randrange(num_nics)
            dst = rng.randrange(num_nics - 1)
            if dst >= src:
                dst += 1
            nbytes = rng.randrange(1, 4 * units.GiB)
            script.append((now, "transfer", (src, dst, nbytes)))
        else:
            nic = rng.randrange(num_nics)
            factor = rng.choice([0.1, 0.5, 2.0, 1.0])
            script.append((now, "rates", (nic, factor)))
    return script


def _replay(solver, rates, script):
    """Run a script against one switch, snapshotting rates at every op."""
    sim, switch, nics = _build(solver, rates)
    base = [(nic.tx_rate, nic.rx_rate) for nic in nics]
    snapshots = []

    def driver():
        for at, op, args in script:
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            if op == "transfer":
                src, dst, nbytes = args
                switch.transfer(nics[src], nics[dst], nbytes)
            else:
                index, factor = args
                switch.set_nic_rates(
                    nics[index],
                    tx_rate=base[index][0] * factor,
                    rx_rate=base[index][1] * factor,
                )
            snapshots.append((sim.now, switch.flow_rates()))

    sim.process(driver())
    sim.run()
    stats = [
        (n.stats.bytes_sent, n.stats.bytes_received, n.stats.flows_started, n.stats.flows_finished)
        for n in nics
    ]
    return snapshots, stats, sim.now


@pytest.mark.parametrize("seed", range(8))
def test_randomized_differential_incremental_vs_reference(seed):
    rng = random.Random(seed)
    num_nics = rng.randrange(3, 9)
    rates = [rng.choice([GBPS, 2 * GBPS, 10 * GBPS]) for _ in range(num_nics)]
    script = _random_script(rng, num_nics, num_ops=40)

    inc_snaps, inc_stats, inc_end = _replay("incremental", rates, script)
    ref_snaps, ref_stats, ref_end = _replay("reference", rates, script)

    assert len(inc_snaps) == len(ref_snaps)
    for (t_inc, flows_inc), (t_ref, flows_ref) in zip(inc_snaps, ref_snaps):
        assert t_inc == pytest.approx(t_ref, rel=1e-9)
        assert len(flows_inc) == len(flows_ref)
        for (src_i, dst_i, rem_i, rate_i), (src_r, dst_r, rem_r, rate_r) in zip(
            flows_inc, flows_ref
        ):
            assert (src_i, dst_i) == (src_r, dst_r)
            assert rate_i == pytest.approx(rate_r, rel=1e-9)
            assert rem_i == pytest.approx(rem_r, rel=1e-9, abs=1e-2)
    # Byte accounting is integral and must agree exactly; completion of
    # the whole history must land at (numerically) the same instant.
    assert inc_stats == ref_stats
    assert inc_end == pytest.approx(ref_end, rel=1e-9)


def test_degenerate_topology_all_flows_one_port():
    """N senders converge on a single receive port: one shared bottleneck."""
    n = 12
    rate = units.gbps(10)
    for solver in ("incremental", "reference"):
        sim, switch, nics = _build(solver, [rate] * (n + 1))
        sink = nics[0]

        def body(src):
            yield switch.transfer(src, sink, int(rate))

        for src in nics[1:]:
            sim.process(body(src))
        # After startup, every flow gets exactly 1/N of the receive port.
        sim.run(until=0.001)
        rows = switch.flow_rates()
        assert len(rows) == n
        for _src, _dst, _rem, flow_rate in rows:
            assert flow_rate == pytest.approx(rate / n, rel=1e-9)
        sim.run()
        assert switch.active_flows == 0
        assert sink.stats.bytes_received == n * int(rate)


def test_degenerate_topology_one_sender_fan_out():
    """One transmit port fans out to N receivers: tx is the bottleneck."""
    n = 8
    rate = units.gbps(10)
    sim, switch, nics = _build("incremental", [rate] * (n + 1))
    source = nics[0]

    def body(dst):
        yield switch.transfer(source, dst, int(rate))

    for dst in nics[1:]:
        sim.process(body(dst))
    sim.run(until=0.001)
    for _src, _dst, _rem, flow_rate in switch.flow_rates():
        assert flow_rate == pytest.approx(rate / n, rel=1e-9)
    sim.run()
    assert source.stats.bytes_sent == n * int(rate)


def test_single_flow_fast_path_runs_at_slower_endpoint():
    sim, switch, (a, b) = _build("incremental", [units.gbps(10), units.gbps(1)])

    def body():
        duration = yield switch.transfer(a, b, int(units.gbps(1)))
        return duration

    proc = sim.process(body())
    sim.run(until=0.001)
    ((_s, _d, _rem, rate),) = switch.flow_rates()
    assert rate == pytest.approx(units.gbps(1))  # min(tx, rx), one round
    sim.run()
    assert proc.value == pytest.approx(1.0, rel=0.01)


def test_disjoint_components_solved_independently():
    """An arrival in one component leaves the other's rates untouched."""
    rate = units.gbps(10)
    sim, switch, nics = _build("incremental", [rate] * 6)

    def body(src, dst, nbytes):
        yield switch.transfer(src, dst, nbytes)

    # Component A: n0 -> n1.  Component B: n2 -> n3, joined later by
    # n4 -> n3 (shares n3's receive port).
    sim.process(body(nics[0], nics[1], int(rate)))
    sim.process(body(nics[2], nics[3], int(rate)))

    def late_arrival():
        yield sim.timeout(0.25)
        switch.transfer(nics[4], nics[3], int(rate))
        rows = {(src, dst): r for src, dst, _rem, r in switch.flow_rates()}
        # Component A still runs at line rate; component B split in half.
        assert rows[("n0", "n1")] == pytest.approx(rate, rel=1e-9)
        assert rows[("n2", "n3")] == pytest.approx(rate / 2, rel=1e-9)
        assert rows[("n4", "n3")] == pytest.approx(rate / 2, rel=1e-9)

    sim.process(late_arrival())
    sim.run()
    assert switch.active_flows == 0


def test_zero_byte_transfer_closes_accounting():
    """Zero-byte flows finish: started/finished pair up, no bytes banked."""
    sim, switch, (a, b) = _build("incremental", [units.gbps(10)] * 2)

    def body():
        yield switch.transfer(a, b, 0)

    sim.run_process(body())
    assert a.stats.flows_started == 1
    assert a.stats.flows_finished == 1
    assert a.stats.bytes_sent == 0
    assert b.stats.bytes_received == 0
    assert switch.total_bytes == 0


def test_nic_degradation_differential():
    """Mid-flight rate changes: both solvers bank and re-solve alike."""
    rate = units.gbps(10)
    ends = {}
    for solver in ("incremental", "reference"):
        sim, switch, (a, b, c) = _build(solver, [rate] * 3)

        def body(src, dst, nbytes):
            yield switch.transfer(src, dst, nbytes)

        def chaos():
            yield sim.timeout(0.25)
            switch.set_nic_rates(c, rx_rate=rate / 10)
            yield sim.timeout(0.5)
            switch.set_nic_rates(c, rx_rate=rate)

        sim.process(body(a, c, int(rate)))
        sim.process(body(b, c, int(rate)))
        sim.process(chaos())
        sim.run()
        ends[solver] = sim.now
    assert ends["incremental"] == pytest.approx(ends["reference"], rel=1e-9)


def test_idle_rate_change_is_a_no_op():
    """Changing rates on a NIC with no flows must not disturb anything."""
    sim, switch, (a, b, c) = _build("incremental", [units.gbps(10)] * 3)

    def body():
        yield switch.transfer(a, b, 10 * units.MiB)

    def tweak():
        yield sim.timeout(0.001)
        switch.set_nic_rates(c, tx_rate=units.gbps(1))

    sim.process(body())
    sim.process(tweak())
    sim.run()
    assert switch.active_flows == 0
    assert a.stats.flows_finished == 1
