"""Mid-flight failover tests: pipeline death, read failover, stacked
failures during recovery, journal capacity edges, and rejoin."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.journal import Journal
from repro.core.monitor import ClusterMonitor, MonitorConfig
from repro.errors import JournalError
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def cluster(num_nodes=8, per_disk=3, payload_mode="bytes"):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=DfsConfig(
            block_size=units.MiB,
            replication=2,
            read_retries=3,
            read_backoff=0.01,
        ),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=per_disk,
        payload_mode=payload_mode,
    )


def expected_payload(dfs, locations):
    block = locations.block
    return dfs.clients[0].factory.make(block.name, locations.version, block.size)


# ----------------------------------------------------------------------
# Mid-write pipeline death.
# ----------------------------------------------------------------------
def test_write_survives_pipeline_member_death():
    dfs = cluster()
    client = dfs.clients[0]
    dfs.namenode.create_file("/f")
    locations = dfs.namenode.allocate_block("/f", units.MiB, writer=client.node.name)
    assert len(locations.datanodes) == 2
    victim_name = locations.datanodes[1]

    def killer():
        yield dfs.sim.timeout(1e-4)  # mid-stream, after the write began
        dfs.datanode_by_name(victim_name).disk.fail()

    def writer():
        yield from client.write_block(locations)

    write = dfs.sim.process(writer(), name="writer")
    dfs.sim.process(killer(), name="killer")
    dfs.sim.run()
    assert write.triggered
    assert client.stats_pipeline_recoveries == 1
    # The dead member was dropped and reported; the block completed short.
    assert victim_name not in locations.datanodes
    assert dfs.namenode.pipeline_failures == [("blk_0", (victim_name,))]
    assert locations in dfs.namenode.under_replicated()
    # The surviving replica holds bit-exact content.
    survivor = dfs.datanode_by_name(locations.datanodes[0])
    assert survivor.content_of("blk_0") == expected_payload(dfs, locations)


def test_write_fails_only_when_every_replica_dies():
    from repro.errors import DfsError

    dfs = cluster()
    client = dfs.clients[0]
    dfs.namenode.create_file("/f")
    locations = dfs.namenode.allocate_block("/f", units.MiB, writer=client.node.name)
    targets = list(locations.datanodes)

    def killer():
        yield dfs.sim.timeout(1e-4)
        for name in targets:
            dfs.datanode_by_name(name).disk.fail()

    def writer():
        with pytest.raises(DfsError):
            yield from client.write_block(locations)

    write = dfs.sim.process(writer(), name="writer")
    dfs.sim.process(killer(), name="killer")
    dfs.sim.run()
    assert write.triggered


# ----------------------------------------------------------------------
# Mid-read replica death with failover.
# ----------------------------------------------------------------------
def test_read_fails_over_to_surviving_replica():
    dfs = cluster()
    client = dfs.clients[0]
    dfs.sim.run_process(client.write_file("/f", units.MiB))
    locations = dfs.namenode.locate_block(0)
    # The writer-local replica is first; force the read to start there,
    # then kill it mid-transfer so the client must fail over.
    local_name = locations.datanodes[0]
    assert dfs.datanode_by_name(local_name).node is client.node

    def killer():
        yield dfs.sim.timeout(1e-4)
        dfs.datanode_by_name(local_name).disk.fail()

    got = {}

    def reader():
        got["payload"] = yield from client.read_block(locations, prefer_local=True)

    read = dfs.sim.process(reader(), name="reader")
    dfs.sim.process(killer(), name="killer")
    dfs.sim.run()
    assert read.triggered
    assert client.stats_read_failovers >= 1
    assert got["payload"] == expected_payload(dfs, locations)


# ----------------------------------------------------------------------
# Double failure during an in-flight single recovery.
# ----------------------------------------------------------------------
def test_double_failure_during_inflight_single_recovery():
    dfs = cluster(num_nodes=10)

    def seed():
        procs = [
            dfs.sim.process(
                dfs.clients[i % len(dfs.clients)].write_file(f"/f{i}", 2 * units.MiB)
            )
            for i in range(8)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(seed())
    monitor = ClusterMonitor(
        dfs, MonitorConfig(heartbeat_interval=0.5, dead_after=2.0, sweep_interval=0.5)
    )
    single = dfs.datanodes[0].name
    pair = next(
        (x, y)
        for x in dfs.layout.disks
        for y in dfs.layout.disks
        if x < y
        and single not in (x, y)
        and dfs.layout.shared(x, y) is not None
    )

    def scenario():
        yield dfs.sim.timeout(2.0)
        dfs.datanode_by_name(single).disk.fail()
        # Wait until the single failure's recovery is actually running,
        # then kill a sharing pair out from under it.
        while not monitor.recoveries or monitor.recoveries[0].triggered:
            yield dfs.sim.timeout(0.1)
        for name in pair:
            dfs.datanode_by_name(name).disk.fail()
        yield dfs.sim.timeout(60.0)

    monitor.start()
    done = dfs.sim.process(scenario(), name="scenario")
    dfs.sim.run(until=120.0)
    assert done.triggered
    monitor.stop()
    dfs.sim.run()

    covered = {name for report in monitor.reports for name in report.failed_disks}
    assert single in covered
    assert set(pair) <= covered
    # Three overlapping failures exceed the 2-failure design point: the
    # pair's shared superchunk is either reconstructed (when its XOR
    # chain survived) or recorded as lost -- never silently dropped --
    # and the singly-lost superchunks around it are still salvaged.
    pair_report = next(
        r for r in monitor.reports if set(r.failed_disks) == set(pair)
    )
    assert pair_report.reconstructed_sc is not None or pair_report.lost_superchunks
    assert pair_report.remirrored
    # Every surviving block replica is bit-exact.
    dfs.verify_mirrors()


# ----------------------------------------------------------------------
# Journal capacity edges.
# ----------------------------------------------------------------------
def payloads(factory, name, nbytes):
    old = factory.make(name, 1, nbytes)
    new = factory.make(name, 2, nbytes)
    return old, new, old.xor(new)


def test_journal_strict_capacity_overflow():
    from repro.storage.payload import ContentFactory

    factory = ContentFactory("tokens")
    journal = Journal(capacity=2 * units.MiB, strict_capacity=True)
    old, new, delta = payloads(factory, "blk_a", units.MiB)
    first = journal.append("blk_a", 0, 0, old, new, delta, units.MiB, now=0.0)
    journal.append("blk_b", 0, 1, old, new, delta, units.MiB, now=0.0)
    with pytest.raises(JournalError):
        journal.append("blk_c", 0, 2, old, new, delta, units.MiB, now=0.0)
    assert journal.overflows == 0  # strict mode raises instead of counting
    # Clearing a record frees its space for a new append.
    journal.mark_committed(first.record_id)
    journal.mark_acked(first.record_id)
    journal.clear(first.record_id, now=1.0)
    journal.append("blk_c", 0, 2, old, new, delta, units.MiB, now=1.0)
    assert journal.outstanding == 2


def test_journal_soft_capacity_counts_overflows():
    from repro.storage.payload import ContentFactory

    factory = ContentFactory("tokens")
    journal = Journal(capacity=units.MiB, strict_capacity=False)
    old, new, delta = payloads(factory, "blk_a", units.MiB)
    journal.append("blk_a", 0, 0, old, new, delta, units.MiB, now=0.0)
    journal.append("blk_b", 0, 1, old, new, delta, units.MiB, now=0.0)
    assert journal.overflows == 1
    assert journal.high_water_bytes == 2 * units.MiB


# ----------------------------------------------------------------------
# Heartbeats and rejoin edges.
# ----------------------------------------------------------------------
class _BareCluster:
    """A cluster facade with no clients and no NameNode endpoint --
    the degenerate shape that used to crash the heartbeat loop."""

    def __init__(self, dfs):
        self.sim = dfs.sim
        self.switch = dfs.switch
        self.config = dfs.config
        self.namenode = dfs.namenode
        self.datanodes = dfs.datanodes
        self.layout = dfs.layout
        self.clients = []


def test_heartbeats_survive_clientless_cluster():
    dfs = cluster(payload_mode="tokens")
    monitor = ClusterMonitor(_BareCluster(dfs))
    monitor.start()
    dfs.sim.run(until=10.0)
    monitor.stop()
    dfs.sim.run()
    for datanode in dfs.datanodes:
        assert monitor.last_heartbeat(datanode.name) > 5.0
    assert monitor.detected == []


def test_rejoined_wiped_disk_reenters_layout():
    dfs = cluster()

    def seed():
        yield from dfs.clients[0].write_file("/f", 2 * units.MiB)

    dfs.sim.run_process(seed())
    monitor = ClusterMonitor(
        dfs, MonitorConfig(heartbeat_interval=0.5, dead_after=2.0, sweep_interval=0.5)
    )
    victim = dfs.datanodes[0]

    def scenario():
        yield dfs.sim.timeout(2.0)
        victim.node.fail()
        yield dfs.sim.timeout(20.0)  # detection + recovery re-home its data
        victim.node.restart()
        monitor.rejoin(victim)
        yield dfs.sim.timeout(10.0)

    monitor.start()
    done = dfs.sim.process(scenario(), name="scenario")
    dfs.sim.run(until=80.0)
    assert done.triggered
    monitor.stop()
    dfs.sim.run()

    assert any(name == victim.name for _t, name in monitor.rejoined)
    assert victim.name not in monitor._handled
    # The wiped replacement disk is back in the layout, empty, and is a
    # legal receiver again.
    assert victim.name in dfs.layout.disks
    assert dfs.layout.superchunks_of(victim.name) == []
    # Its staleness clock restarted: no immediate re-detection occurred.
    assert sum(1 for _t, names in monitor.detected if victim.name in names) == 1
