"""Unit tests for resources, locks, and byte-range locks."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import ByteRangeLock, Lock, Resource, with_resource


def test_resource_serializes_beyond_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    finish_times = []

    def body():
        grant = yield resource.request()
        yield sim.timeout(1.0)
        resource.release(grant)
        finish_times.append(sim.now)

    for _ in range(4):
        sim.process(body())
    sim.run()
    # Two run in [0,1], two wait and run in [1,2].
    assert finish_times == [1.0, 1.0, 2.0, 2.0]
    assert resource.total_waits == 2
    assert resource.total_grants == 4


def test_resource_fifo_ordering():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def body(tag):
        grant = yield resource.request()
        order.append(tag)
        yield sim.timeout(1.0)
        resource.release(grant)

    for tag in ("a", "b", "c"):
        sim.process(body(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_release_twice_is_error():
    sim = Simulator()
    resource = Resource(sim)

    def body():
        grant = yield resource.request()
        resource.release(grant)
        resource.release(grant)

    sim.process(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_release_to_wrong_resource_is_error():
    sim = Simulator()
    first = Resource(sim)
    second = Resource(sim)

    def body():
        grant = yield first.request()
        second.release(grant)

    sim.process(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_lock_reports_locked_state():
    sim = Simulator()
    lock = Lock(sim)
    states = []

    def body():
        grant = yield lock.request()
        states.append(lock.locked())
        yield sim.timeout(1.0)
        lock.release(grant)
        states.append(lock.locked())

    sim.process(body())
    sim.run()
    assert states == [True, False]


def test_with_resource_helper_releases_on_success():
    sim = Simulator()
    resource = Resource(sim)

    def inner():
        yield sim.timeout(1.0)
        return "ok"

    def body():
        value = yield from with_resource(resource, inner())
        return value

    assert sim.run_process(body()) == "ok"
    assert resource.in_use == 0


def test_with_resource_helper_releases_on_error():
    sim = Simulator()
    resource = Resource(sim)

    def inner():
        yield sim.timeout(1.0)
        raise RuntimeError("inner failure")

    def body():
        try:
            yield from with_resource(resource, inner())
        except RuntimeError:
            pass
        return resource.in_use

    assert sim.run_process(body()) == 0


def test_byte_range_lock_disjoint_ranges_run_concurrently():
    sim = Simulator()
    lock = ByteRangeLock(sim)
    finish_times = []

    def body(start, end):
        grant = yield lock.acquire(start, end)
        yield sim.timeout(1.0)
        lock.release(grant)
        finish_times.append(sim.now)

    sim.process(body(0, 100))
    sim.process(body(100, 200))
    sim.process(body(200, 300))
    sim.run()
    assert finish_times == [1.0, 1.0, 1.0]


def test_byte_range_lock_overlapping_ranges_serialize():
    sim = Simulator()
    lock = ByteRangeLock(sim)
    finish_times = []

    def body(start, end):
        grant = yield lock.acquire(start, end)
        yield sim.timeout(1.0)
        lock.release(grant)
        finish_times.append(sim.now)

    sim.process(body(0, 100))
    sim.process(body(50, 150))
    sim.run()
    assert finish_times == [1.0, 2.0]


def test_byte_range_lock_fifo_no_starvation():
    sim = Simulator()
    lock = ByteRangeLock(sim)
    order = []

    def holder():
        grant = yield lock.acquire(0, 100)
        yield sim.timeout(1.0)
        lock.release(grant)
        order.append("holder")

    def wide():
        yield sim.timeout(0.1)
        grant = yield lock.acquire(0, 1000)
        order.append("wide")
        yield sim.timeout(1.0)
        lock.release(grant)

    def late_small():
        # Arrives after the wide waiter; overlaps it, so it must queue
        # behind it even though [500, 600) is free right now.
        yield sim.timeout(0.2)
        grant = yield lock.acquire(500, 600)
        order.append("small")
        lock.release(grant)

    sim.process(holder())
    sim.process(wide())
    sim.process(late_small())
    sim.run()
    assert order == ["holder", "wide", "small"]


def test_byte_range_lock_release_unheld_is_error():
    sim = Simulator()
    lock = ByteRangeLock(sim)
    with pytest.raises(SimulationError):
        lock.release((0, 10))


def test_byte_range_lock_rejects_empty_range():
    sim = Simulator()
    lock = ByteRangeLock(sim)
    with pytest.raises(ValueError):
        lock.acquire(10, 10)
