"""Integration tests for the baseline HDFS substrate."""

import pytest

from repro import units
from repro.errors import (
    BlockMissingError,
    DfsError,
    FileExistsInDfsError,
    FileNotFoundInDfsError,
    PlacementError,
)
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec


def small_cluster(replication=3, num_nodes=4, payload_mode="bytes", **kwargs):
    config = DfsConfig(
        block_size=4 * units.MiB,
        packet_size=64 * units.KiB,
        replication=replication,
    )
    spec = ClusterSpec(num_nodes=num_nodes)
    return HdfsCluster(spec=spec, config=config, payload_mode=payload_mode, **kwargs)


def test_config_validation():
    with pytest.raises(ValueError):
        DfsConfig(block_size=100, packet_size=64)
    with pytest.raises(ValueError):
        DfsConfig(replication=0)
    assert DfsConfig().packets_per_block == 1024


def test_write_creates_replicas_on_k_nodes():
    dfs = small_cluster(replication=3)
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f1", 8 * units.MiB))
    blocks = dfs.namenode.file_blocks("/f1")
    assert len(blocks) == 2
    for block in blocks:
        locations = dfs.namenode.locate_block(block.block_id)
        assert locations.replica_count == 3
        for name in locations.datanodes:
            assert dfs.namenode.datanode(name).has_block(block.name)


def test_writer_local_replica_first():
    dfs = small_cluster(replication=2)
    client = dfs.client(1)
    dfs.sim.run_process(client.write_file("/f", units.MiB))
    locations = dfs.namenode.locate_block(dfs.namenode.file_blocks("/f")[0].block_id)
    assert locations.datanodes[0] == dfs.datanodes[1].name


def test_read_returns_written_payload():
    dfs = small_cluster(replication=2)
    client = dfs.client(0)

    def body():
        yield from client.write_file("/f", 6 * units.MiB)
        block = dfs.namenode.file_blocks("/f")[0]
        locations = dfs.namenode.locate_block(block.block_id)
        payload = yield from client.read_block(locations)
        return payload, block

    payload, block = dfs.sim.run_process(body())
    expected = dfs.factory.make(block.name, 1, block.size)
    assert payload == expected


def test_read_file_returns_total_bytes():
    dfs = small_cluster(replication=2)
    client = dfs.client(0)

    def body():
        yield from client.write_file("/f", 9 * units.MiB)
        total = yield from client.read_file("/f")
        return total

    assert dfs.sim.run_process(body()) == 9 * units.MiB


def test_remote_read_crosses_network():
    dfs = small_cluster(replication=2)
    writer = dfs.client(0)

    def body():
        yield from writer.write_file("/f", 4 * units.MiB)

    dfs.sim.run_process(body())
    # Read from a node that holds no replica.
    locations = dfs.namenode.locate_block(dfs.namenode.file_blocks("/f")[0].block_id)
    non_replica = next(
        c for c in dfs.clients if c.node.name not in locations.datanodes
    )
    before = dfs.total_network_bytes()

    def read_body():
        yield from non_replica.read_file("/f")

    dfs.sim.run_process(read_body())
    assert dfs.total_network_bytes() - before == 4 * units.MiB


def test_write_network_volume_scales_with_replication():
    volumes = {}
    for replication in (2, 3):
        dfs = small_cluster(replication=replication, payload_mode="tokens")
        client = dfs.client(0)
        dfs.sim.run_process(client.write_file("/f", 16 * units.MiB))
        volumes[replication] = dfs.total_network_bytes()
    # Writer-local first replica: k replicas need k-1 network copies.
    assert volumes[3] == pytest.approx(volumes[2] * 2, rel=0.01)


def test_triplication_slower_than_two_replicas():
    runtimes = {}
    for replication in (2, 3):
        dfs = small_cluster(replication=replication, payload_mode="tokens")

        def all_writers(dfs=dfs):
            procs = [
                dfs.sim.process(c.write_file(f"/f{i}", 32 * units.MiB))
                for i, c in enumerate(dfs.clients)
            ]
            yield dfs.sim.all_of(procs)

        dfs.sim.run_process(all_writers())
        runtimes[replication] = dfs.sim.now
    assert runtimes[3] > runtimes[2]


def test_duplicate_create_rejected():
    dfs = small_cluster()
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", units.MiB))
    with pytest.raises(FileExistsInDfsError):
        dfs.sim.run_process(client.write_file("/f", units.MiB))


def test_missing_file_read_rejected():
    dfs = small_cluster()
    client = dfs.client(0)
    with pytest.raises(FileNotFoundInDfsError):
        dfs.sim.run_process(client.read_file("/nope"))


def test_placement_fails_with_too_few_nodes():
    dfs = small_cluster(replication=3, num_nodes=4)
    for name in ("n1", "n2"):
        dfs.namenode.mark_datanode_dead(name)
    client = dfs.client(0)
    with pytest.raises(PlacementError):
        dfs.sim.run_process(client.write_file("/f", units.MiB))


def test_delete_file_drops_replicas():
    dfs = small_cluster(replication=2)
    client = dfs.client(0)

    def body():
        yield from client.write_file("/f", 4 * units.MiB)
        block = dfs.namenode.file_blocks("/f")[0]
        yield from client.delete_file("/f")
        return block

    block = dfs.sim.run_process(body())
    assert not dfs.namenode.file_exists("/f")
    for datanode in dfs.datanodes:
        assert not datanode.has_block(block.name)


def test_datanode_death_surfaces_under_replication():
    dfs = small_cluster(replication=2)
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    victim = dfs.namenode.locate_block(
        dfs.namenode.file_blocks("/f")[0].block_id
    ).datanodes[0]
    affected = dfs.namenode.mark_datanode_dead(victim)
    assert affected
    assert dfs.namenode.under_replicated()
    assert not dfs.namenode.lost_blocks()


def test_all_replicas_dead_is_lost_block():
    dfs = small_cluster(replication=2)
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", units.MiB))
    locations = dfs.namenode.locate_block(dfs.namenode.file_blocks("/f")[0].block_id)
    for name in list(locations.datanodes):
        dfs.namenode.mark_datanode_dead(name)
    assert dfs.namenode.lost_blocks()
    reader = dfs.client(3)
    with pytest.raises(BlockMissingError):
        dfs.sim.run_process(reader.read_file("/f"))


def test_rewrite_bumps_version_and_keeps_placement():
    dfs = small_cluster(replication=2)
    client = dfs.client(0)

    def body():
        yield from client.write_file("/f", 4 * units.MiB)
        block = dfs.namenode.file_blocks("/f")[0]
        before = list(dfs.namenode.locate_block(block.block_id).datanodes)
        yield from client.rewrite_file("/f")
        after = dfs.namenode.locate_block(block.block_id)
        return block, before, after

    block, before, after = dfs.sim.run_process(body())
    assert after.datanodes == before
    assert after.version == 2
    replica = dfs.namenode.datanode(after.datanodes[0])
    assert replica.version_of(block.name) == 2
    assert replica.content_of(block.name) == dfs.factory.make(block.name, 2, block.size)


def test_streamed_and_accumulated_paths_both_store_content():
    for accumulate in (False, True):
        dfs = small_cluster(replication=2, accumulate_writes=accumulate)
        client = dfs.client(0)
        dfs.sim.run_process(client.write_file("/f", 4 * units.MiB))
        block = dfs.namenode.file_blocks("/f")[0]
        locations = dfs.namenode.locate_block(block.block_id)
        for name in locations.datanodes:
            assert dfs.namenode.datanode(name).has_block(block.name)
