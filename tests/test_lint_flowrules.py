"""Seeded-violation fixtures for the flow-sensitive rules RDP101..RDP105.

Every rule gets at least one snippet that must fire and a matching
clean snippet encoding the blessed idiom, so a rule change that stops
catching the hazard -- or starts flagging the fix -- breaks loudly.
The hypothesis test generates leak/no-leak *pairs* from the same
skeleton and checks the rule separates them on every draw.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.engine import LintConfig, LintEngine
from repro.lint.flowrules import (
    ResourceLeakRule,
    RngDisciplineRule,
    SameInstantHazardRule,
    SnapshotSafetyRule,
    StaleYieldStateRule,
)

SIM_PATH = "src/repro/sim/fake.py"


def run_rule(rule, source, path=SIM_PATH):
    engine = LintEngine([rule], LintConfig())
    return engine.lint_source(source, path=path)


def rule_ids(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# RDP101 -- resource leaks.
# ----------------------------------------------------------------------
def test_rdp101_flags_unprotected_span():
    source = (
        "def worker(res, sim):\n"
        "    grant = yield res.request()\n"
        "    yield sim.sleep(1.0)\n"
        "    res.release(grant)\n"
    )
    findings = run_rule(ResourceLeakRule(), source)
    assert rule_ids(findings) == ["RDP101"]
    assert "exception path" in findings[0].message


def test_rdp101_flags_return_path_leak():
    source = (
        "def worker(res, done):\n"
        "    grant = yield res.request()\n"
        "    if done:\n"
        "        return None\n"
        "    res.release(grant)\n"
    )
    findings = run_rule(ResourceLeakRule(), source)
    assert rule_ids(findings) == ["RDP101"]
    assert "return path" in findings[0].message


def test_rdp101_accepts_try_finally():
    source = (
        "def worker(res, sim):\n"
        "    grant = yield res.request()\n"
        "    try:\n"
        "        yield sim.sleep(1.0)\n"
        "    finally:\n"
        "        res.release(grant)\n"
    )
    assert run_rule(ResourceLeakRule(), source) == []


def test_rdp101_accepts_conditional_acquire_with_guarded_release():
    # The datanode idiom: maybe-acquire, release under the same guard.
    source = (
        "def writer(lock, use_lock, sim):\n"
        "    grant = (yield lock.request()) if use_lock else None\n"
        "    try:\n"
        "        yield sim.sleep(1.0)\n"
        "    finally:\n"
        "        if grant is not None:\n"
        "            lock.release(grant)\n"
    )
    assert run_rule(ResourceLeakRule(), source) == []


def test_rdp101_accepts_ownership_handoff():
    # Passing the grant on decides its fate; the callee owns it now.
    source = (
        "def helper(res, consumer):\n"
        "    grant = yield res.request()\n"
        "    consumer.adopt(grant)\n"
    )
    assert run_rule(ResourceLeakRule(), source) == []


def test_rdp101_flags_leak_on_exception_between_acquires():
    # The recovery.py shape before the fix: nested acquire inside an
    # unprotected span.
    source = (
        "def puller(lock, bus, sim):\n"
        "    grant = yield lock.acquire(0, 10)\n"
        "    bus_grant = yield bus.request()\n"
        "    yield sim.sleep(1.0)\n"
        "    bus.release(bus_grant)\n"
        "    lock.release(grant)\n"
    )
    findings = run_rule(ResourceLeakRule(), source)
    assert rule_ids(findings) == ["RDP101", "RDP101"]


@settings(max_examples=25, deadline=None)
@given(
    sleeps=st.integers(min_value=1, max_value=4),
    protected=st.booleans(),
    resource=st.sampled_from(["res", "lock", "bus"]),
)
def test_rdp101_differential_leak_vs_no_leak(sleeps, protected, resource):
    """The same body, protected vs not, must flip the verdict."""
    body = "".join(f"        yield sim.sleep({i}.0)\n" for i in range(sleeps))
    if protected:
        source = (
            f"def worker({resource}, sim):\n"
            f"    grant = yield {resource}.request()\n"
            "    try:\n"
            f"{body}"
            "    finally:\n"
            f"        {resource}.release(grant)\n"
        )
    else:
        source = (
            f"def worker({resource}, sim):\n"
            f"    grant = yield {resource}.request()\n"
            f"{body.replace('        ', '    ')}"
            f"    {resource}.release(grant)\n"
        )
    findings = run_rule(ResourceLeakRule(), source)
    if protected:
        assert findings == []
    else:
        assert rule_ids(findings) == ["RDP101"]


# ----------------------------------------------------------------------
# RDP102 -- stale state across a yield.
# ----------------------------------------------------------------------
def test_rdp102_flags_read_modify_write_across_yield():
    source = (
        "def proc(disk, sim):\n"
        "    pending = disk.stats.pending\n"
        "    yield sim.sleep(1.0)\n"
        "    disk.stats.pending = pending + 1\n"
    )
    findings = run_rule(StaleYieldStateRule(), source)
    assert rule_ids(findings) == ["RDP102"]
    assert "disk.stats.pending" in findings[0].message


def test_rdp102_accepts_reread_after_yield():
    source = (
        "def proc(disk, sim):\n"
        "    yield sim.sleep(1.0)\n"
        "    pending = disk.stats.pending\n"
        "    disk.stats.pending = pending + 1\n"
    )
    assert run_rule(StaleYieldStateRule(), source) == []


def test_rdp102_accepts_unrelated_writeback():
    # The local came from a *different* chain; writing it elsewhere is
    # not a read-modify-write of the same cell.
    source = (
        "def proc(disk, sim):\n"
        "    limit = disk.geometry.capacity\n"
        "    yield sim.sleep(1.0)\n"
        "    disk.stats.high_water = limit\n"
    )
    assert run_rule(StaleYieldStateRule(), source) == []


def test_rdp102_flags_only_the_stale_branch():
    source = (
        "def proc(disk, sim, fast):\n"
        "    count = disk.stats.count\n"
        "    if fast:\n"
        "        disk.stats.count = count + 1\n"
        "    else:\n"
        "        yield sim.sleep(1.0)\n"
        "        disk.stats.count = count + 1\n"
    )
    findings = run_rule(StaleYieldStateRule(), source)
    assert len(findings) == 1
    assert findings[0].line == 7


# ----------------------------------------------------------------------
# RDP103 -- RNG stream discipline.
# ----------------------------------------------------------------------
def test_rdp103_flags_unblessed_receiver_draw():
    source = (
        "def jitter(model, n):\n"
        "    return [model.helper.random() for _ in range(n)]\n"
    )
    findings = run_rule(RngDisciplineRule(), source)
    assert rule_ids(findings) == ["RDP103"]


def test_rdp103_accepts_threaded_rng_parameter():
    source = "def jitter(rng, n):\n    return [rng.random() for _ in range(n)]\n"
    assert run_rule(RngDisciplineRule(), source) == []


def test_rdp103_accepts_seeded_ctor_and_spawn():
    source = (
        "import random\n"
        "def build(seed):\n"
        "    rng = random.Random(seed)\n"
        "    child_rng = rng.spawn(1)\n"
        "    return rng.random() + child_rng.random()\n"
    )
    assert run_rule(RngDisciplineRule(), source) == []


def test_rdp103_flags_rng_named_binding_from_ambient_state():
    source = (
        "def sneaky(registry):\n"
        "    rng = registry.global_random\n"
        "    return rng.random()\n"
    )
    findings = run_rule(RngDisciplineRule(), source)
    assert rule_ids(findings) == ["RDP103"]
    assert "seeded" in findings[0].message


def test_rdp103_interprocedural_call_site_check():
    source = (
        "def draw(rng, n):\n"
        "    return rng.randint(0, n)\n"
        "def caller(model):\n"
        "    return draw(model.clock, 10)\n"
    )
    findings = run_rule(RngDisciplineRule(), source)
    assert rule_ids(findings) == ["RDP103"]
    assert "draw" in findings[0].message


def test_rdp103_interprocedural_accepts_blessed_argument():
    source = (
        "def draw(rng, n):\n"
        "    return rng.randint(0, n)\n"
        "def caller(rng):\n"
        "    return draw(rng.spawn(1), 10)\n"
    )
    assert run_rule(RngDisciplineRule(), source) == []


def test_rdp103_accepts_rng_factory_call():
    source = (
        "def trial(self, index):\n"
        "    rng = self._trial_rng(index)\n"
        "    return rng.random()\n"
    )
    assert run_rule(RngDisciplineRule(), source) == []


# ----------------------------------------------------------------------
# RDP104 -- same-instant callback ordering hazards.
# ----------------------------------------------------------------------
def test_rdp104_flags_write_read_race():
    source = (
        "def transfer(self, ev1, ev2, port):\n"
        "    def bump(_ev):\n"
        "        port.stats.flows = port.stats.flows + 1\n"
        "    def snapshot(_ev):\n"
        "        total = port.stats.flows\n"
        "        port.log.append(total)\n"
        "    ev1.add_callback(bump)\n"
        "    ev2.add_callback(snapshot)\n"
    )
    findings = run_rule(SameInstantHazardRule(), source)
    assert rule_ids(findings) == ["RDP104"]
    assert "port.stats.flows" in findings[0].message


def test_rdp104_accepts_disjoint_callbacks():
    source = (
        "def transfer(self, ev1, ev2, port):\n"
        "    def bump(_ev):\n"
        "        port.stats.flows = port.stats.flows + 1\n"
        "    def log_time(_ev):\n"
        "        port.log.append(1)\n"
        "    ev1.add_callback(bump)\n"
        "    ev2.add_callback(log_time)\n"
    )
    assert run_rule(SameInstantHazardRule(), source) == []


def test_rdp104_accepts_single_registration():
    source = (
        "def transfer(self, ev, port):\n"
        "    def bump(_ev):\n"
        "        port.stats.flows = port.stats.flows + 1\n"
        "    ev.add_callback(bump)\n"
    )
    assert run_rule(SameInstantHazardRule(), source) == []


def test_rdp104_flags_lambda_conflicts():
    source = (
        "def arm(self, ev1, ev2, node):\n"
        "    ev1.add_callback(lambda _e: setattr(node, 'x', node.stats.seen))\n"
        "    def reader(_e):\n"
        "        node.stats.seen = 1\n"
        "    ev2.add_callback(reader)\n"
    )
    findings = run_rule(SameInstantHazardRule(), source)
    assert rule_ids(findings) == ["RDP104"]


# ----------------------------------------------------------------------
# RDP105 -- snapshot safety.
# ----------------------------------------------------------------------
def test_rdp105_flags_ambient_handle_on_inline_state():
    source = (
        "class Disk(InlineState):\n"
        "    def __init__(self, size):\n"
        "        self.size = size\n"
        "        self.trace = active_tracer()\n"
    )
    findings = run_rule(SnapshotSafetyRule(), source)
    assert rule_ids(findings) == ["RDP105"]
    assert "ambient" in findings[0].message


def test_rdp105_accepts_getstate_custody():
    source = (
        "class Disk(InlineState):\n"
        "    def __init__(self, size):\n"
        "        self.size = size\n"
        "        self.trace = active_tracer()\n"
        "    def __getstate__(self):\n"
        "        return {'size': self.size}\n"
    )
    assert run_rule(SnapshotSafetyRule(), source) == []


def test_rdp105_flags_setstate_override():
    source = (
        "class Disk(InlineState):\n"
        "    def __init__(self, size):\n"
        "        self.size = size\n"
        "    def __setstate__(self, state):\n"
        "        pass\n"
    )
    findings = run_rule(SnapshotSafetyRule(), source)
    assert rule_ids(findings) == ["RDP105"]
    assert "__setstate__" in findings[0].message


def test_rdp105_flags_slots_mismatch():
    source = (
        "class Disk(InlineState):\n"
        "    __slots__ = ('size',)\n"
        "    def __init__(self, size):\n"
        "        self.size = size\n"
        "        self.extra = 1\n"
    )
    findings = run_rule(SnapshotSafetyRule(), source)
    assert rule_ids(findings) == ["RDP105"]
    assert "__slots__" in findings[0].message


def test_rdp105_ignores_classes_outside_the_capture_graph():
    source = (
        "class Tool:\n"
        "    def __init__(self):\n"
        "        self.out = sys.stdout\n"
    )
    assert run_rule(SnapshotSafetyRule(), source) == []


def test_rdp105_flags_snapshot_facade_with_open_handle():
    source = (
        "class Exporter:\n"
        "    def __init__(self, path):\n"
        "        self.handle = open(path, 'w')\n"
        "    def snapshot(self):\n"
        "        return dict(self.__dict__)\n"
    )
    findings = run_rule(SnapshotSafetyRule(), source)
    assert rule_ids(findings) == ["RDP105"]
