"""Tests for the deterministic fault-injection subsystem."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.monitor import ClusterMonitor, MonitorConfig
from repro.faults import (
    Fault,
    FaultError,
    FaultInjector,
    FaultSchedule,
    chaos_schedule,
)
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def cluster(num_nodes=8, payload_mode="tokens"):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=3,
        payload_mode=payload_mode,
    )


# ----------------------------------------------------------------------
# Schedule construction and validation.
# ----------------------------------------------------------------------
def test_fault_rejects_unknown_kind_and_bad_times():
    with pytest.raises(FaultError):
        Fault(at=1.0, kind="meteor_strike", target="n0")
    with pytest.raises(FaultError):
        Fault(at=-1.0, kind="disk_fail", target="n0")
    with pytest.raises(FaultError):
        Fault(at=1.0, kind="nic_degrade", target="n0", factor=1.5, duration=1.0)
    with pytest.raises(FaultError):
        Fault(at=1.0, kind="nic_degrade", target="n0", factor=0.5, duration=0.0)


def test_schedule_sorts_and_shifts():
    schedule = FaultSchedule(
        (
            Fault(at=5.0, kind="disk_fail", target="n1"),
            Fault(at=2.0, kind="disk_fail", target="n0"),
        )
    )
    assert [f.at for f in schedule] == [2.0, 5.0]
    shifted = schedule.shifted(10.0)
    assert [f.at for f in shifted] == [12.0, 15.0]
    assert len(shifted) == 2


def test_validate_rejects_unknown_targets():
    dfs = cluster()
    schedule = FaultSchedule((Fault(at=1.0, kind="disk_fail", target="bogus"),))
    with pytest.raises(FaultError):
        schedule.validate(dfs)
    with pytest.raises(FaultError):
        FaultInjector(dfs, schedule)


def test_chaos_schedule_is_deterministic_and_separated():
    dfs_a, dfs_b = cluster(), cluster()
    plan_a = chaos_schedule(dfs_a, seed=77)
    plan_b = chaos_schedule(dfs_b, seed=77)
    assert plan_a.faults == plan_b.faults
    assert chaos_schedule(cluster(), seed=78).faults != plan_a.faults
    # Detectable faults (disk failures, node crashes) are spread out so
    # only the intentional same-instant pairs are ever co-detected.
    detectable = sorted(
        {f.at for f in plan_a if f.kind in ("disk_fail", "node_crash")}
    )
    for earlier, later in zip(detectable, detectable[1:]):
        assert later - earlier >= 3.5 - 1e-9
    # The double failure is a same-instant sharing pair.
    by_time = {}
    for fault in plan_a:
        if fault.kind == "disk_fail":
            by_time.setdefault(fault.at, []).append(fault.target)
    pairs = [targets for targets in by_time.values() if len(targets) == 2]
    assert len(pairs) == 1
    a, b = pairs[0]
    assert dfs_a.layout.shared(a, b) is not None


def test_chaos_schedule_window_too_narrow():
    with pytest.raises(FaultError):
        chaos_schedule(cluster(), seed=1, window=(2.0, 4.0), min_gap=3.5)


# ----------------------------------------------------------------------
# Injection semantics, one kind at a time.
# ----------------------------------------------------------------------
def run_injector(dfs, schedule, monitor=None, horizon=30.0):
    injector = FaultInjector(dfs, schedule, monitor=monitor)
    injector.start()
    dfs.sim.run(until=horizon)
    assert injector.done
    return injector


def test_disk_fail_and_replace():
    dfs = cluster()
    victim = dfs.datanodes[0]
    schedule = FaultSchedule(
        (
            Fault(at=1.0, kind="disk_fail", target=victim.name),
            Fault(at=2.0, kind="disk_replace", target=victim.name),
        )
    )
    injector = run_injector(dfs, schedule)
    assert not victim.disk.failed
    assert [record.at for record in injector.injected] == [1.0, 2.0]


def test_node_crash_and_restart_without_monitor():
    dfs = cluster()
    victim = dfs.datanodes[0]
    schedule = FaultSchedule(
        (
            Fault(at=1.0, kind="node_crash", target=victim.node.name),
            Fault(at=5.0, kind="node_restart", target=victim.node.name),
        )
    )
    run_injector(dfs, schedule)
    assert victim.node.alive
    assert victim.alive


def test_node_restart_rejoins_through_monitor():
    dfs = cluster()
    monitor = ClusterMonitor(
        dfs, MonitorConfig(heartbeat_interval=0.5, dead_after=1.5, sweep_interval=0.5)
    )
    victim = dfs.datanodes[0]
    schedule = FaultSchedule(
        (
            Fault(at=1.0, kind="node_crash", target=victim.node.name),
            Fault(at=8.0, kind="node_restart", target=victim.node.name),
        )
    )
    monitor.start()
    injector = FaultInjector(dfs, schedule, monitor=monitor)
    injector.start()
    dfs.sim.run(until=20.0)
    monitor.stop()
    dfs.sim.run()
    assert any(name == victim.name for _t, name in monitor.rejoined)
    # Quarantine was lifted: a second crash of the same node is detectable.
    assert victim.name not in monitor._handled


def test_nic_degrade_restores_rates():
    dfs = cluster()
    node = dfs.datanodes[0].node
    nic = node.primary_nic
    before = (nic.tx_rate, nic.rx_rate)
    schedule = FaultSchedule(
        (
            Fault(
                at=1.0,
                kind="nic_degrade",
                target=node.name,
                factor=0.1,
                duration=2.0,
            ),
        )
    )
    run_injector(dfs, schedule, horizon=1.5)
    assert nic.tx_rate == pytest.approx(before[0] * 0.1)
    dfs.sim.run(until=10.0)
    assert (nic.tx_rate, nic.rx_rate) == pytest.approx(before)


def test_lstor_fail_keeps_disk_serving():
    dfs = cluster(payload_mode="bytes")

    def body():
        yield from dfs.clients[0].write_file("/f", 2 * units.MiB)

    dfs.sim.run_process(body())
    victim = dfs.datanodes[0]
    schedule = FaultSchedule((Fault(at=1.0, kind="lstor_fail", target=victim.name),))
    run_injector(dfs, schedule, horizon=5.0)
    assert victim.lstors.primary.failed
    assert not victim.disk.failed

    # The disk keeps absorbing writes (degraded to plain replication:
    # journal and parity silently inactive on the failed device).
    def rewrite():
        yield from dfs.clients[0].rewrite_file("/f")

    dfs.sim.run_process(rewrite())
    dfs.verify_mirrors()


def test_injector_cannot_start_twice():
    dfs = cluster()
    injector = FaultInjector(dfs, FaultSchedule())
    injector.start()
    with pytest.raises(FaultError):
        injector.start()
