"""Unit and property tests for the matching substrate.

networkx is available offline and serves as the reference implementation
for cross-checking both maximum matching size and min-cost assignment
totals.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.matching import DynamicHungarian, hopcroft_karp, hungarian


# ----------------------------------------------------------------------
# Hopcroft-Karp.
# ----------------------------------------------------------------------
def test_hk_simple_perfect_matching():
    graph = {"a": ["x", "y"], "b": ["x"], "c": ["z"]}
    matching = hopcroft_karp(graph)
    assert len(matching) == 3
    assert matching["b"] == "x"
    assert set(matching.values()) == {"x", "y", "z"}


def test_hk_maximum_but_not_perfect():
    graph = {"a": ["x"], "b": ["x"], "c": ["x"]}
    matching = hopcroft_karp(graph)
    assert len(matching) == 1


def test_hk_empty_graph():
    assert hopcroft_karp({}) == {}


def test_hk_left_vertex_with_no_edges():
    matching = hopcroft_karp({"a": [], "b": ["x"]})
    assert matching == {"b": "x"}


def test_hk_matching_is_valid():
    graph = {i: [(i + d) % 7 for d in (0, 1, 2)] for i in range(7)}
    matching = hopcroft_karp(graph)
    # No right vertex used twice, every edge exists.
    assert len(set(matching.values())) == len(matching)
    for left, right in matching.items():
        assert right in graph[left]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_hk_matches_networkx_cardinality(seed):
    import random

    rng = random.Random(seed)
    n_left, n_right = rng.randint(1, 10), rng.randint(1, 10)
    graph = {}
    nx_graph = nx.Graph()
    for left in range(n_left):
        edges = [r for r in range(n_right) if rng.random() < 0.4]
        graph[f"L{left}"] = [f"R{r}" for r in edges]
        nx_graph.add_node(f"L{left}", bipartite=0)
        for r in edges:
            nx_graph.add_edge(f"L{left}", f"R{r}")
    ours = hopcroft_karp(graph)
    left_nodes = {n for n in nx_graph if n.startswith("L")}
    theirs = nx.bipartite.maximum_matching(nx_graph, top_nodes=left_nodes)
    # networkx returns both directions; count left-side entries.
    theirs_size = sum(1 for k in theirs if k.startswith("L"))
    assert len(ours) == theirs_size


# ----------------------------------------------------------------------
# Hungarian.
# ----------------------------------------------------------------------
def test_hungarian_trivial():
    assignment, total = hungarian([[1.0]])
    assert assignment == {0: 0}
    assert total == 1.0


def test_hungarian_classic_example():
    cost = [
        [4, 1, 3],
        [2, 0, 5],
        [3, 2, 2],
    ]
    assignment, total = hungarian(cost)
    assert total == 5.0  # 1 + 2 + 2
    assert assignment == {0: 1, 1: 0, 2: 2}


def test_hungarian_rectangular_more_cols():
    cost = [
        [10, 1, 10, 10],
        [10, 10, 2, 10],
    ]
    assignment, total = hungarian(cost)
    assert assignment == {0: 1, 1: 2}
    assert total == 3.0


def test_hungarian_forbidden_edges():
    cost = [
        [None, 1.0],
        [1.0, None],
    ]
    assignment, total = hungarian(cost)
    assert assignment == {0: 1, 1: 0}
    assert total == 2.0


def test_hungarian_infeasible_raises():
    with pytest.raises(MatchingError):
        hungarian([[None, None], [1.0, 2.0]])


def test_hungarian_more_rows_than_cols_raises():
    with pytest.raises(MatchingError):
        hungarian([[1.0], [2.0]])


def test_hungarian_empty():
    assignment, total = hungarian([])
    assert assignment == {}
    assert total == 0.0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_hungarian_matches_scipy_reference(seed):
    import random

    from scipy.optimize import linear_sum_assignment

    rng = random.Random(seed)
    n = rng.randint(1, 8)
    m = rng.randint(n, 9)
    cost = [[rng.randint(0, 50) for _ in range(m)] for _ in range(n)]
    assignment, total = hungarian(cost)
    rows, cols = linear_sum_assignment(cost)
    reference = sum(cost[r][c] for r, c in zip(rows, cols))
    assert total == pytest.approx(reference)
    # Also check the assignment is consistent and unique.
    assert len(set(assignment.values())) == n


# ----------------------------------------------------------------------
# Dynamic Hungarian.
# ----------------------------------------------------------------------
def test_dynamic_resolve_after_edge_removal():
    solver = DynamicHungarian([[1, 5], [5, 1]])
    assignment, total = solver.solve()
    assert total == 2.0
    solver.remove_edge(0, 0)
    assignment, total = solver.solve()
    assert assignment == {0: 1, 1: 0}
    assert total == 10.0


def test_dynamic_resolve_after_cost_update():
    solver = DynamicHungarian([[1, 5], [5, 1]])
    solver.solve()
    solver.update_cost(0, 1, 0.5)
    solver.update_cost(1, 0, 0.5)
    assignment, total = solver.solve()
    assert assignment == {0: 1, 1: 0}
    assert total == 1.0


def test_dynamic_lowering_cost_keeps_correctness():
    solver = DynamicHungarian([[10, 20, 30], [20, 10, 30], [30, 20, 10]])
    _, total = solver.solve()
    assert total == 30.0
    # Lowering costs can break dual feasibility of the warm start; the
    # solver must clamp and still find the new optimum.
    solver.update_cost(0, 2, 1.0)
    solver.update_cost(1, 0, 1.0)
    solver.update_cost(2, 1, 1.0)
    assignment, total = solver.solve()
    assert assignment == {0: 2, 1: 0, 2: 1}
    assert total == 3.0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_dynamic_matches_fresh_solve(seed):
    import random

    from scipy.optimize import linear_sum_assignment

    rng = random.Random(seed)
    n = rng.randint(2, 6)
    cost = [[rng.randint(1, 30) for _ in range(n)] for _ in range(n)]
    solver = DynamicHungarian(cost)
    solver.solve()
    # Apply a few random mutations, keeping at least one edge per row.
    for _ in range(3):
        row, col = rng.randrange(n), rng.randrange(n)
        if rng.random() < 0.5:
            cost[row][col] = rng.randint(1, 30)
            solver.update_cost(row, col, cost[row][col])
        else:
            cost[row][col] = 10**6  # effectively forbidden but feasible
            solver.update_cost(row, col, cost[row][col])
    _, total = solver.solve()
    rows, cols = linear_sum_assignment(cost)
    reference = sum(cost[r][c] for r, c in zip(rows, cols))
    assert total == pytest.approx(reference)
