"""Stateful property test: the layout invariants survive any op sequence.

Hypothesis drives random interleavings of superchunk allocation, disk
failure, re-mirroring, and re-homing against a model; after every step
the 1-sharing/1-mirroring verifier must pass and the model must agree
with the layout's bookkeeping.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.layout import Layout, LayoutSpec
from repro import units

DISKS = [f"d{i}" for i in range(8)]


class LayoutMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.layout = Layout(
            DISKS,
            LayoutSpec(superchunk_size=4 * units.MiB, block_size=units.MiB),
        )
        # Model: sc_id -> set of live homes; pair -> sc_id.
        self.homes = {}
        self.live_disks = set(DISKS)

    # ------------------------------------------------------------------
    # Rules.
    # ------------------------------------------------------------------
    @rule(data=st.data())
    def allocate(self, data):
        candidates = [
            (a, b)
            for a in sorted(self.live_disks)
            for b in sorted(self.live_disks)
            if a < b and self.layout.can_pair(a, b)
        ]
        if not candidates:
            return
        a, b = data.draw(st.sampled_from(candidates), label="pair")
        sc = self.layout.add_superchunk(a, b)
        self.homes[sc.sc_id] = {a, b}

    @precondition(lambda self: len(self.live_disks) > 3)
    @rule(data=st.data())
    def fail_disk(self, data):
        victim = data.draw(st.sampled_from(sorted(self.live_disks)), label="victim")
        self.layout.remove_disk(victim)
        self.live_disks.remove(victim)
        for homes in self.homes.values():
            homes.discard(victim)

    @rule(data=st.data())
    def remirror_orphan(self, data):
        orphans = [sc for sc, homes in self.homes.items() if len(homes) == 1]
        if not orphans:
            return
        sc_id = data.draw(st.sampled_from(sorted(orphans)), label="orphan")
        survivor = next(iter(self.homes[sc_id]))
        receivers = [
            d
            for d in sorted(self.live_disks)
            if d != survivor
            and self.layout.shared(survivor, d) is None
            and len(self.layout.superchunks_of(d)) < self.layout.max_superchunks(d)
        ]
        if not receivers:
            return
        receiver = data.draw(st.sampled_from(receivers), label="receiver")
        self.layout.remirror(sc_id, receiver)
        self.homes[sc_id].add(receiver)

    @rule(data=st.data())
    def rehome_doubly_lost(self, data):
        lost = [sc for sc, homes in self.homes.items() if len(homes) == 0]
        if not lost:
            return
        sc_id = data.draw(st.sampled_from(sorted(lost)), label="lost")
        pairs = [
            (a, b)
            for a in sorted(self.live_disks)
            for b in sorted(self.live_disks)
            if a < b and self.layout.can_pair(a, b)
        ]
        if not pairs:
            return
        a, b = data.draw(st.sampled_from(pairs), label="new-pair")
        self.layout.rehome(sc_id, a, b)
        self.homes[sc_id] = {a, b}

    # ------------------------------------------------------------------
    # Invariants.
    # ------------------------------------------------------------------
    @invariant()
    def verifier_passes(self):
        self.layout.verify()

    @invariant()
    def model_agrees(self):
        assert set(self.layout.disks) == self.live_disks
        for sc_id, homes in self.homes.items():
            sc = self.layout.superchunk(sc_id)
            live_homes = {d for d in sc.disks if d in self.live_disks}
            assert live_homes == homes, f"superchunk {sc_id}"

    @invariant()
    def one_sharing_globally(self):
        seen = set()
        for sc_id, homes in self.homes.items():
            if len(homes) == 2:
                pair = frozenset(homes)
                assert pair not in seen, f"pair {sorted(pair)} shares twice"
                seen.add(pair)


LayoutMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestLayoutStateMachine = LayoutMachine.TestCase
