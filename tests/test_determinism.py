"""End-to-end determinism: identical seeds give bit-identical runs.

Reproducibility is a core requirement (every experiment must regenerate
exactly); these tests pin it at the workload level.
"""

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec
from repro.workloads.dfsio import dfsio_read, dfsio_write
from repro.workloads.terasort import teragen, terasort


def run_raidp(seed):
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(replication=2),
        raidp=RaidpConfig(),
        payload_mode="tokens",
        seed=seed,
    )
    write = dfsio_write(dfs, units.GiB)
    read = dfsio_read(dfs)
    placements = tuple(
        (loc.block.name, tuple(loc.datanodes), loc.sc_id, loc.slot)
        for loc in dfs.namenode.all_blocks()
    )
    return (write.runtime, write.network_bytes, read.runtime, placements)


def run_hdfs(seed):
    dfs = HdfsCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(replication=3),
        payload_mode="tokens",
        seed=seed,
    )
    teragen(dfs, units.GiB)
    result = terasort(dfs, units.GiB)
    return (result.runtime, result.network_bytes, result.disk_seeks)


def test_raidp_run_is_deterministic():
    assert run_raidp(seed=42) == run_raidp(seed=42)


def test_different_seeds_change_placement():
    first = run_raidp(seed=1)
    second = run_raidp(seed=2)
    assert first[3] != second[3]  # placements differ


def test_hdfs_terasort_is_deterministic():
    assert run_hdfs(seed=7) == run_hdfs(seed=7)
