"""Tests for the durability/availability analysis (paper §2)."""

import pytest

from repro.analysis.durability import (
    FailureSimulator,
    FleetSpec,
    durability_summary,
    mttdl_erasure,
    mttdl_raidp,
    mttdl_replication,
)


# ----------------------------------------------------------------------
# Analytic MTTDL.
# ----------------------------------------------------------------------
def test_more_replicas_last_longer():
    two = mttdl_replication(2, 1e6, 12.0)
    three = mttdl_replication(3, 1e6, 12.0)
    assert three > two * 100  # each extra replica multiplies MTTDL


def test_faster_rebuild_improves_mttdl():
    slow = mttdl_replication(3, 1e6, 48.0)
    fast = mttdl_replication(3, 1e6, 6.0)
    assert fast > slow


def test_raidp_matches_triplication_class_durability():
    """The paper's durability claim: RAIDP with one Lstor tolerates the
    same double failure as triplication."""
    raidp = mttdl_raidp(1e6, 12.0)
    rep3 = mttdl_replication(3, 1e6, 12.0)
    rep2 = mttdl_replication(2, 1e6, 12.0)
    assert raidp == pytest.approx(rep3)
    assert raidp > rep2 * 1000


def test_unreliable_lstor_degrades_durability():
    perfect = mttdl_raidp(1e6, 12.0)
    flaky = mttdl_raidp(1e6, 12.0, lstor_mttf_hours=1e4)
    assert flaky < perfect
    assert flaky > mttdl_replication(2, 1e6, 12.0)  # still better than 2-rep


def test_stacked_lstors_increase_durability():
    one = mttdl_raidp(1e6, 12.0, lstors_per_disk=1)
    two = mttdl_raidp(1e6, 12.0, lstors_per_disk=2)
    assert two > one * 100


def test_erasure_wide_stripe_is_more_exposed():
    narrow = mttdl_erasure(4, 2, 1e6, 12.0)
    wide = mttdl_erasure(16, 2, 1e6, 12.0)
    assert narrow > wide  # more disks in a stripe, more exposure


def test_replication_validation():
    with pytest.raises(ValueError):
        mttdl_replication(0, 1e6, 12.0)


def test_summary_orders_schemes():
    summary = durability_summary()
    assert summary["rep2"] < summary["raidp"]
    assert summary["raidp"] == pytest.approx(summary["rep3"])
    assert summary["raidp(2 lstors)"] > summary["raidp"]


# ----------------------------------------------------------------------
# Monte-Carlo.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def outcomes():
    # Aggressive failure rates so events occur within few trials.
    spec = FleetSpec(
        num_racks=8,
        disks_per_rack=4,
        disk_afr=0.5,
        rack_outage_rate=12.0,
        rebuild_hours=24.0 * 14,
        years=3.0,
    )
    return FailureSimulator(spec, seed=7).run(trials=600)


def test_monte_carlo_durability_ordering(outcomes):
    """Data-loss probability: rep2 >> raidp ~ rep3."""
    assert outcomes["rep2"].loss_probability > outcomes["rep3"].loss_probability
    assert outcomes["rep2"].loss_probability > outcomes["raidp"].loss_probability
    # RAIDP's durability is in triplication's class (within noise).
    assert outcomes["raidp"].loss_probability <= outcomes["rep2"].loss_probability / 2


def test_monte_carlo_availability_penalty(outcomes):
    """The paper's §2 concession: RAIDP spans only two failure domains,
    so rack outages hide data more often than under triplication."""
    assert (
        outcomes["raidp"].unavailability_probability
        >= outcomes["rep3"].unavailability_probability
    )


def test_monte_carlo_is_deterministic():
    spec = FleetSpec(disk_afr=0.3, years=1.0)
    first = FailureSimulator(spec, seed=3).run(trials=50)
    second = FailureSimulator(spec, seed=3).run(trials=50)
    for name in first:
        assert first[name].loss_probability == second[name].loss_probability


def test_monte_carlo_counts_are_consistent(outcomes):
    for outcome in outcomes.values():
        assert outcome.trials == 600
        assert 0 <= outcome.data_loss_events <= outcome.trials
        assert 0 <= outcome.unavailability_events <= outcome.trials


# ----------------------------------------------------------------------
# The §2 caveat and the _judge fixes (ISSUE 7 satellites).
# ----------------------------------------------------------------------
def test_raidp_unavailability_strictly_exceeds_rep3(outcomes):
    """Regression: with the co-located-Lstor caveat honoured, RAIDP's
    two failure domains must cost it strictly more unavailability than
    triplication's three under rack outages -- the old judge read
    ``local_parity_racks`` into the void and under-counted this."""
    assert (
        outcomes["raidp"].unavailability_probability
        > outcomes["rep3"].unavailability_probability
    )


def test_judge_sees_unavailability_between_outages():
    """Both replicas dead at once (survivable for RAIDP via parity) is
    an *unavailability* window even when no rack outage is in flight;
    the old judge only sampled outage-start instants."""
    sim = FailureSimulator(FleetSpec(), seed=1)
    h0, h1 = 0, sim.spec.disks_per_rack  # racks 0 and 1
    lost, unavailable = sim._judge(
        holders=[h0, h1],
        tolerance=2,
        needed_online=1,
        local_parity_racks=[0, 1],
        disk_failures=[(10.0, h0), (15.0, h1)],
        rack_outages=[],
    )
    assert not lost
    assert unavailable


def test_judge_does_not_score_availability_after_loss():
    """Once data is lost there is nothing left to be unavailable; the
    old judge kept scoring outages against the stale, partially
    populated dead_until left behind by the early break."""
    sim = FailureSimulator(FleetSpec(rebuild_hours=336.0), seed=1)
    h0, h1 = 0, sim.spec.disks_per_rack
    lost, unavailable = sim._judge(
        holders=[h0, h1],
        tolerance=1,  # rep2: the second overlapping failure is loss
        needed_online=1,
        local_parity_racks=[],
        disk_failures=[(10.0, h0), (20.0, h1)],
        rack_outages=[(30.0, 0), (30.0, 1)],
    )
    assert lost
    assert not unavailable


def test_judge_disables_dark_lstor_assist():
    """A rack outage disables the co-located Lstor's parity assist: a
    second replica failure during that window is a loss, where the same
    failure with the Lstor's rack lit is survivable."""
    sim = FailureSimulator(FleetSpec(), seed=1)
    h0, h1 = 0, sim.spec.disks_per_rack
    base = dict(
        holders=[h0, h1],
        tolerance=2,
        needed_online=1,
        local_parity_racks=[0, 1],
        disk_failures=[(10.0, h0), (17.0, h1)],
    )
    lost_lit, _ = sim._judge(rack_outages=[], **base)
    # Rack 0 (the first dead replica's Lstor) goes dark at hour 15; the
    # default 4-hour outage covers the second failure at hour 17.
    lost_dark, _ = sim._judge(rack_outages=[(15.0, 0)], **base)
    assert not lost_lit
    assert lost_dark


def test_ec_stripe_clipped_to_fleet_is_not_stronger():
    """Regression: clipping the stripe to the rack count must also
    shrink its data width -- the old run() left needed_online at the
    unclipped value, making a 5-rack 'ec(6+2)' impossibly strong."""
    spec = FleetSpec(
        num_racks=5,
        disks_per_rack=4,
        disk_afr=0.5,
        rack_outage_rate=12.0,
        rebuild_hours=24.0 * 14,
        years=3.0,
    )
    outcomes_clipped = FailureSimulator(spec, seed=7).run(trials=300)
    ec = outcomes_clipped["ec(6+2)"]
    # A 5-disk n+2 stripe (n=3) still loses data under these stress
    # rates; the mis-derived variant scored an 8-wide tolerance on a
    # 5-wide placement and reported near-zero loss.
    assert ec.trials == 300
    assert ec.loss_probability > 0


def test_ec_raises_on_undersized_fleet():
    spec = FleetSpec(num_racks=3, disks_per_rack=4)
    with pytest.raises(ValueError):
        FailureSimulator(spec, seed=7).run(trials=10)
