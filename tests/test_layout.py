"""Unit and property tests for the superchunk layout (paper §3.1)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.layout import Layout, LayoutSpec, rotational_layout
from repro.errors import CapacityError, LayoutError


def test_spec_validates_geometry():
    with pytest.raises(ValueError):
        LayoutSpec(superchunk_size=0)
    with pytest.raises(ValueError):
        LayoutSpec(superchunk_size=100, block_size=64)
    spec = LayoutSpec(superchunk_size=6 * units.GiB, block_size=64 * units.MiB)
    assert spec.blocks_per_superchunk == 96


def test_add_superchunk_assigns_slots():
    layout = Layout(["a", "b", "c"])
    sc = layout.add_superchunk("a", "b")
    assert sc.slot_on("a") == 0
    assert sc.slot_on("b") == 0
    assert sc.mirror_of("a") == "b"
    sc2 = layout.add_superchunk("a", "c")
    assert sc2.slot_on("a") == 1
    assert sc2.slot_on("c") == 0


def test_one_sharing_enforced():
    layout = Layout(["a", "b", "c"])
    layout.add_superchunk("a", "b")
    with pytest.raises(LayoutError, match="1-sharing"):
        layout.add_superchunk("a", "b")
    with pytest.raises(LayoutError, match="1-sharing"):
        layout.add_superchunk("b", "a")


def test_self_mirror_rejected():
    layout = Layout(["a", "b"])
    with pytest.raises(LayoutError):
        layout.add_superchunk("a", "a")


def test_unknown_disk_rejected():
    layout = Layout(["a", "b"])
    with pytest.raises(LayoutError):
        layout.add_superchunk("a", "zz")


def test_capacity_bound_n_minus_one():
    layout = Layout(["a", "b", "c"])
    layout.add_superchunk("a", "b")
    layout.add_superchunk("a", "c")
    # "a" now holds 2 == N-1 superchunks; any further pairing is full.
    assert not layout.can_pair("a", "b")
    with pytest.raises((CapacityError, LayoutError)):
        layout.add_superchunk("a", "b")


def test_shared_lookup():
    layout = Layout(["a", "b", "c"])
    sc = layout.add_superchunk("a", "b")
    assert layout.shared("a", "b") == sc.sc_id
    assert layout.shared("b", "a") == sc.sc_id
    assert layout.shared("a", "c") is None


def test_duplicate_disk_names_rejected():
    with pytest.raises(LayoutError):
        Layout(["a", "a"])


def test_remove_disk_returns_orphans():
    layout = Layout(["a", "b", "c"])
    sc1 = layout.add_superchunk("a", "b")
    sc2 = layout.add_superchunk("b", "c")
    orphans = layout.remove_disk("b")
    assert {sc.sc_id for sc in orphans} == {sc1.sc_id, sc2.sc_id}
    assert not layout.is_fully_mirrored
    assert "b" not in layout.disks


def test_remirror_restores_mirroring():
    layout = Layout(["a", "b", "c", "d"])
    sc = layout.add_superchunk("a", "b")
    layout.remove_disk("b")
    updated = layout.remirror(sc.sc_id, "c")
    assert updated.disks == frozenset({"a", "c"})
    assert layout.is_fully_mirrored
    layout.verify()


def test_remirror_rejects_sharing_violation():
    layout = Layout(["a", "b", "c"])
    layout.add_superchunk("a", "c")
    sc = layout.add_superchunk("a", "b")
    layout.remove_disk("b")
    # a and c already share: re-homing sc onto c would violate 1-sharing.
    with pytest.raises(LayoutError, match="1-sharing"):
        layout.remirror(sc.sc_id, "c")


def test_remirror_rejects_survivor_disk():
    layout = Layout(["a", "b", "c"])
    sc = layout.add_superchunk("a", "b")
    layout.remove_disk("b")
    with pytest.raises(LayoutError):
        layout.remirror(sc.sc_id, "a")


def test_remirror_only_for_singly_homed():
    layout = Layout(["a", "b", "c"])
    sc = layout.add_superchunk("a", "b")
    with pytest.raises(LayoutError):
        layout.remirror(sc.sc_id, "c")


def test_bounds_formulas():
    assert Layout.max_total_superchunks(7) == 21
    assert Layout.max_after_failures(7, 2) == 10
    assert Layout.max_after_failures(2, 2) == 0


def test_min_superchunk_size():
    layout = Layout([f"d{i}" for i in range(1000)])
    # 1000 disks of 4TB: ~4GB superchunks (the paper's example).
    size = layout.min_superchunk_size(4 * units.TB)
    assert size == -(-4 * units.TB // 999)


@pytest.mark.parametrize("num_disks", [2, 3, 4, 5, 7, 8, 16, 17])
def test_rotational_layout_invariants(num_disks):
    layout = rotational_layout(num_disks)
    layout.verify()
    # 1-sharing exhaustively.
    for a, b in itertools.combinations(layout.disks, 2):
        shared = [
            sc
            for sc in layout.superchunks.values()
            if sc.disks == frozenset((a, b))
        ]
        assert len(shared) <= 1
    # 1-mirroring: every superchunk has exactly two distinct homes.
    for sc in layout.superchunks.values():
        assert len(sc.disks) == 2


@pytest.mark.parametrize("num_disks", [3, 5, 7, 9, 16, 17])
def test_rotational_layout_fills_to_n_minus_one(num_disks):
    layout = rotational_layout(num_disks)
    counts = [len(layout.superchunks_of(d)) for d in layout.disks]
    assert max(counts) <= num_disks - 1
    # The construction should come close to the bound for odd N and
    # reach N-1 via the half row for even N; allow a small shortfall.
    assert min(counts) >= num_disks - 3


def test_rotational_layout_respects_target():
    layout = rotational_layout(10, superchunks_per_disk=4)
    for disk in layout.disks:
        assert len(layout.superchunks_of(disk)) <= 4


def test_rotational_layout_rejects_impossible_target():
    with pytest.raises(CapacityError):
        rotational_layout(4, superchunks_per_disk=6)


def test_rotational_layout_custom_names():
    layout = rotational_layout(3, disk_names=["x", "y", "z"])
    assert set(layout.disks) == {"x", "y", "z"}
    with pytest.raises(LayoutError):
        rotational_layout(3, disk_names=["x", "y"])


def test_seven_disk_example_matches_paper_shape():
    """Fig. 3: seven disks, six superchunks each, every pair shares one."""
    layout = rotational_layout(7)
    for disk in layout.disks:
        assert len(layout.superchunks_of(disk)) == 6
    # With N-1 superchunks per disk, every pair of disks shares exactly one.
    for a, b in itertools.combinations(layout.disks, 2):
        assert layout.shared(a, b) is not None
    assert len(layout.superchunks) == 21  # 7*6/2


def test_render_contains_all_disks():
    layout = rotational_layout(5)
    art = layout.render()
    for disk in layout.disks:
        assert disk in art


@settings(max_examples=30, deadline=None)
@given(num_disks=st.integers(min_value=2, max_value=24))
def test_property_rotational_layout_always_legal(num_disks):
    layout = rotational_layout(num_disks)
    layout.verify()
    total = len(layout.superchunks)
    assert total <= Layout.max_total_superchunks(num_disks)


@settings(max_examples=30, deadline=None)
@given(
    num_disks=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_random_failure_leaves_recoverable_layout(num_disks, seed):
    """After removing any one disk, every orphan has a surviving home and
    the remaining layout still verifies."""
    import random

    rng = random.Random(seed)
    layout = rotational_layout(num_disks)
    victim = rng.choice(layout.disks)
    orphans = layout.remove_disk(victim)
    layout.verify()
    for sc in orphans:
        survivors = [d for d in sc.disks if d in layout.disks]
        assert len(survivors) == 1
