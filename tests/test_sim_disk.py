"""Unit tests for the hard-drive timing model."""

import pytest

from repro import units
from repro.errors import DiskFailedError
from repro.sim.disk import Disk, DiskGeometry
from repro.sim.engine import Simulator


def make_disk(sim, **overrides):
    geometry = DiskGeometry(**overrides) if overrides else DiskGeometry()
    return Disk(sim, geometry, name="d0")


def test_sequential_io_pays_only_transfer_time():
    sim = Simulator()
    disk = make_disk(sim)

    def body():
        first = yield from disk.write(0, 64 * units.MiB)
        second = yield from disk.write(64 * units.MiB, 64 * units.MiB)
        return first, second

    first, second = sim.run_process(body())
    expected = 64 * units.MiB / disk.geometry.transfer_rate
    assert first == pytest.approx(expected)
    # The second write starts at the head position: no seek at all.
    assert second == pytest.approx(expected)
    assert disk.stats.seeks == 0


def test_random_io_pays_seek_and_rotation():
    sim = Simulator()
    disk = make_disk(sim)

    def body():
        yield from disk.write(0, units.MiB)
        far = disk.geometry.capacity // 2
        duration = yield from disk.write(far, units.MiB)
        return duration

    duration = sim.run_process(body())
    transfer = units.MiB / disk.geometry.transfer_rate
    assert duration > transfer + disk.geometry.rotational_latency
    assert disk.stats.seeks == 1
    assert disk.stats.seek_seconds > 0


def test_near_seek_is_cheap():
    sim = Simulator()
    disk = make_disk(sim)

    def body():
        yield from disk.write(0, units.MiB)
        # Hop backward by less than the near threshold.
        duration = yield from disk.write(512 * units.KiB, units.MiB)
        return duration

    duration = sim.run_process(body())
    transfer = units.MiB / disk.geometry.transfer_rate
    assert duration == pytest.approx(transfer + disk.geometry.seek_min)


def test_seek_time_monotone_in_distance():
    geometry = DiskGeometry()
    distances = [4 * units.MiB, units.GiB, 100 * units.GiB, geometry.capacity]
    times = [geometry.seek_time(d) for d in distances]
    assert times == sorted(times)
    assert times[-1] == pytest.approx(geometry.seek_full)


def test_io_serializes_through_fifo_queue():
    sim = Simulator()
    disk = make_disk(sim)
    finish = []

    def body(offset):
        yield from disk.write(offset, 64 * units.MiB)
        finish.append(sim.now)

    sim.process(body(0))
    sim.process(body(units.GiB))
    sim.run()
    # The second I/O cannot start before the first finished.
    assert finish[1] > finish[0]


def test_interleaved_writers_ping_pong_head():
    """Two concurrent writers at distant offsets cause a seek per I/O."""
    sim = Simulator()
    disk = make_disk(sim)

    def writer(base):
        for i in range(4):
            yield from disk.write(base + i * units.MiB, units.MiB)

    sim.process(writer(0))
    sim.process(writer(500 * units.GiB))
    sim.run()
    # FIFO alternation: every I/O after the first jumps across the disk.
    assert disk.stats.seeks >= 6


def test_failed_disk_raises():
    sim = Simulator()
    disk = make_disk(sim)
    disk.fail()

    def body():
        yield from disk.read(0, units.KiB)

    sim.process(body())
    with pytest.raises(DiskFailedError):
        sim.run()


def test_failure_mid_queue_kills_waiting_io():
    sim = Simulator()
    disk = make_disk(sim)
    outcomes = []

    def long_writer():
        yield from disk.write(0, units.GiB)
        outcomes.append("long-done")

    def failer():
        yield sim.timeout(0.001)
        disk.fail()
        outcomes.append("failed")

    def late_writer():
        yield sim.timeout(0.002)
        try:
            yield from disk.write(units.GiB, units.MiB)
        except DiskFailedError:
            outcomes.append("late-error")

    sim.process(long_writer())
    sim.process(failer())
    proc = sim.process(late_writer())
    with pytest.raises(DiskFailedError):
        # The long writer itself dies when the disk fails under it.
        sim.run()
    assert "late-error" in outcomes or not proc.is_alive


def test_out_of_range_io_rejected():
    sim = Simulator()
    disk = make_disk(sim, capacity=units.GiB)

    def body():
        yield from disk.write(units.GiB, 1)

    sim.process(body())
    with pytest.raises(ValueError):
        sim.run()


def test_stats_accumulate():
    sim = Simulator()
    disk = make_disk(sim)

    def body():
        yield from disk.write(0, 10 * units.MiB)
        yield from disk.read(0, 10 * units.MiB)
        yield from disk.sync()

    sim.run_process(body())
    assert disk.stats.reads == 1
    assert disk.stats.writes == 1
    assert disk.stats.bytes_read == 10 * units.MiB
    assert disk.stats.bytes_written == 10 * units.MiB
    assert disk.stats.syncs == 1
    assert disk.stats.busy_seconds > 0
    snap = disk.stats.snapshot()
    assert snap.ios == 2
    assert snap.bytes_total == 20 * units.MiB


def test_estimate_matches_charge():
    sim = Simulator()
    disk = make_disk(sim)

    def body():
        yield from disk.write(0, units.MiB)
        offset = 700 * units.GiB
        estimate = disk.estimate(offset, units.MiB)
        actual = yield from disk.write(offset, units.MiB)
        return estimate, actual

    estimate, actual = sim.run_process(body())
    assert estimate == pytest.approx(actual)


def test_repair_resets_head_and_clears_failure():
    sim = Simulator()
    disk = make_disk(sim)
    disk.fail()
    disk.repair()

    def body():
        duration = yield from disk.write(0, units.MiB)
        return duration

    assert sim.run_process(body()) > 0
    assert not disk.failed


# ----------------------------------------------------------------------
# stream_io: the uncontended fast path must be observationally identical
# to the queued read/write path (timing, head, stats, gauge, histogram).
# ----------------------------------------------------------------------
_STREAM_OPS = [
    ("write", 0, 4 * units.MiB),
    ("write", 4 * units.MiB, 4 * units.MiB),  # sequential: no seek
    ("read", 512 * units.MiB, 8 * units.MiB),  # far seek + rotation
    ("read", 520 * units.MiB, 2 * units.MiB),
    ("write", units.MiB, 3 * units.MiB),  # backward seek
]


def test_stream_io_matches_queued_path_exactly():
    queued_sim = Simulator()
    queued = make_disk(queued_sim)

    def queued_body():
        durations = []
        for kind, offset, nbytes in _STREAM_OPS:
            op = queued.read if kind == "read" else queued.write
            durations.append((yield from op(offset, nbytes)))
        return durations

    queued_durations = queued_sim.run_process(queued_body())

    stream_sim = Simulator()
    stream = make_disk(stream_sim)

    def stream_body():
        durations = []
        for kind, offset, nbytes in _STREAM_OPS:
            duration = stream.stream_io(kind, offset, nbytes)
            yield stream_sim.timeout(duration)
            durations.append(duration)
        return durations

    stream_durations = stream_sim.run_process(stream_body())

    assert stream_durations == queued_durations  # bitwise, not approx
    assert stream_sim.now == queued_sim.now
    assert stream.head == queued.head
    assert stream.stats.seeks == queued.stats.seeks
    assert stream.stats.seek_seconds == queued.stats.seek_seconds
    assert stream.io_latency.counts == queued.io_latency.counts
    assert stream.io_latency.sum == queued.io_latency.sum
    assert stream.io_latency.max == queued.io_latency.max
    assert stream.queue_gauge.max_value == queued.queue_gauge.max_value


def test_stream_io_refuses_busy_queue():
    from repro.errors import SimulationError

    sim = Simulator()
    disk = make_disk(sim)

    def holder():
        yield from disk.write(0, 64 * units.MiB)

    def contender():
        yield sim.timeout(0.0001)  # the holder owns the queue by now
        with pytest.raises(SimulationError, match="busy disk"):
            disk.stream_io("read", 0, units.MiB)

    sim.process(holder())
    sim.run_process(contender())


def test_stream_io_respects_failure_and_bounds():
    sim = Simulator()
    disk = make_disk(sim)
    with pytest.raises(ValueError):
        disk.stream_io("read", -1, units.MiB)
    with pytest.raises(ValueError):
        disk.stream_io("read", disk.geometry.capacity, units.MiB)
    disk.fail()
    with pytest.raises(DiskFailedError):
        disk.stream_io("read", 0, units.MiB)
