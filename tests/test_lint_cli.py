"""CLI-layer tests: SARIF rendering, baselines, the incremental cache,
and the RDP007 stale-suppression rule.

The SARIF test validates the document structurally against the parts of
the 2.1.0 schema the code-scanning ingest actually requires (version,
runs, tool.driver.rules, results with physical locations); CI uploads
the same document to code scanning, which applies the full schema.
"""

import json

from repro.lint.baseline import (
    apply_baseline,
    fingerprint_findings,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import LintCache, ruleset_version
from repro.lint.cli import build_engine, main
from repro.lint.engine import LintConfig, LintEngine
from repro.lint.sarif import SARIF_SCHEMA_URI, render_sarif

LEAKY = (
    "def worker(res, sim):\n"
    "    grant = yield res.request()\n"
    "    yield sim.sleep(1.0)\n"
    "    res.release(grant)\n"
)
SIM_PATH = "src/repro/sim/fake.py"


def leaky_findings():
    engine = build_engine(select=["RDP101"])
    return engine.lint_source(LEAKY, path=SIM_PATH), engine


# ----------------------------------------------------------------------
# SARIF.
# ----------------------------------------------------------------------
def test_sarif_document_structure():
    findings, engine = leaky_findings()
    document = json.loads(render_sarif(findings, engine.rules))
    assert document["version"] == "2.1.0"
    assert document["$schema"] == SARIF_SCHEMA_URI
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in ("error", "warning")
    (result,) = run["results"]
    assert result["ruleId"] == "RDP101"
    assert result["level"] == "error"
    assert result["message"]["text"]
    (location,) = result["locations"]
    region = location["physicalLocation"]["region"]
    assert region["startLine"] == 2 and region["startColumn"] >= 1
    assert location["physicalLocation"]["artifactLocation"]["uri"] == SIM_PATH
    assert "reproLintFingerprint/v1" in result["partialFingerprints"]
    # ruleIndex must agree with the rules table.
    assert driver["rules"][result["ruleIndex"]]["id"] == "RDP101"


def test_sarif_rule_table_covers_engine_level_ids():
    _findings, engine = leaky_findings()
    document = json.loads(render_sarif([], engine.rules))
    rule_ids = {r["id"] for r in document["runs"][0]["tool"]["driver"]["rules"]}
    # Engine-level diagnostics that have no Rule class still need
    # metadata for code scanning to attribute results.
    assert {"RDP000", "RDP007", "E999"} <= rule_ids


def test_sarif_via_cli_output_file(tmp_path, capsys):
    target = tmp_path / "leaky.py"
    target.write_text(LEAKY)
    out = tmp_path / "report.sarif"
    code = main(
        ["--format", "sarif", "--output", str(out), "--no-cache", str(target)]
    )
    assert code == 0  # scoped rules skip a path outside src/repro
    document = json.loads(out.read_text())
    assert document["version"] == "2.1.0"
    assert capsys.readouterr().out == ""


# ----------------------------------------------------------------------
# Baseline.
# ----------------------------------------------------------------------
def test_fingerprints_are_stable_and_occurrence_counted():
    findings, _ = leaky_findings()
    doubled = findings + findings  # same (path, rule, message) twice
    digests = [d for _f, d in fingerprint_findings(doubled)]
    assert digests[0] != digests[1]  # occurrence counter splits them
    again = [d for _f, d in fingerprint_findings(doubled)]
    assert digests == again


def test_baseline_roundtrip_filters_known_findings(tmp_path):
    findings, _ = leaky_findings()
    path = tmp_path / "baseline.json"
    count = write_baseline(findings, str(path))
    assert count == len(findings) == 1
    kept, matched = apply_baseline(findings, load_baseline(str(path)))
    assert kept == [] and matched == 1
    # A *new* finding with a different message is not absorbed.
    other = findings[0].__class__(**{**findings[0].as_dict(), "message": "new"})
    kept, matched = apply_baseline([other], load_baseline(str(path)))
    assert kept == [other] and matched == 0


def test_missing_baseline_is_empty():
    assert load_baseline("/nonexistent/baseline.json") == {}


def test_cli_baseline_gate(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "leaky.py"
    target.parent.mkdir(parents=True)
    target.write_text(LEAKY)
    baseline = tmp_path / "baseline.json"
    # Unbaselined: the leak fails the run.
    assert main(["--no-cache", str(target)]) == 1
    # Snapshot, then the same findings pass under the baseline.
    assert main(["--no-cache", "--write-baseline", str(baseline), str(target)]) == 0
    assert main(["--no-cache", "--baseline", str(baseline), str(target)]) == 0


# ----------------------------------------------------------------------
# Incremental cache.
# ----------------------------------------------------------------------
def test_cache_cold_and_warm_agree(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "leaky.py"
    target.parent.mkdir(parents=True)
    target.write_text(LEAKY)

    def engine():
        return build_engine(cache_dir=str(tmp_path / "cache"))

    cold_engine = engine()
    cold = cold_engine.lint_paths([str(target)])
    assert cold_engine.cache.misses == 1 and cold_engine.cache.hits == 0
    warm_engine = engine()
    warm = warm_engine.lint_paths([str(target)])
    assert warm_engine.cache.hits == 1 and warm_engine.cache.misses == 0
    assert warm == cold


def test_cache_invalidated_by_content_change(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "leaky.py"
    target.parent.mkdir(parents=True)
    target.write_text(LEAKY)
    cache_dir = str(tmp_path / "cache")
    build_engine(cache_dir=cache_dir).lint_paths([str(target)])
    target.write_text(LEAKY + "\n# trailing comment\n")
    engine = build_engine(cache_dir=cache_dir)
    engine.lint_paths([str(target)])
    assert engine.cache.misses == 1


def test_cache_keyed_on_run_configuration(tmp_path):
    target = tmp_path / "src" / "repro" / "sim" / "leaky.py"
    target.parent.mkdir(parents=True)
    target.write_text(LEAKY)
    cache_dir = str(tmp_path / "cache")
    narrow = build_engine(select=["RDP101"], cache_dir=cache_dir)
    narrow.lint_paths([str(target)])
    full = build_engine(cache_dir=cache_dir)
    full_findings = full.lint_paths([str(target)])
    # The full run must not be served the RDP101-only findings.
    assert full.cache.misses == 1
    assert {f.rule for f in full_findings} >= {"RDP101", "RDP006"}


def test_cache_corruption_is_a_miss(tmp_path):
    cache = LintCache(str(tmp_path / "cache"), config_key="k")
    cache.put("a.py", "x = 1\n", [])
    entry = next((tmp_path / "cache").iterdir())
    entry.write_text("{not json")
    assert cache.get("a.py", "x = 1\n") is None


def test_ruleset_version_is_stable_within_a_checkout():
    assert ruleset_version() == ruleset_version()
    assert len(ruleset_version()) == 16


# ----------------------------------------------------------------------
# RDP007 -- stale suppressions.
# ----------------------------------------------------------------------
def test_rdp007_flags_suppression_that_no_longer_fires():
    engine = build_engine()
    findings = engine.lint_source(
        "x = 1  # raidp: noqa[RDP001] -- once hid a wall-clock call\n",
        path=SIM_PATH,
    )
    assert [f.rule for f in findings] == ["RDP007"]
    assert "stale suppression" in findings[0].message


def test_rdp007_quiet_while_the_suppression_still_earns_its_keep():
    engine = build_engine()
    findings = engine.lint_source(
        "import time\n"
        "t = time.time()  # raidp: noqa[RDP001] -- fixture exercising the clock\n",
        path=SIM_PATH,
    )
    assert findings == []


def test_rdp007_ignores_rules_that_did_not_run():
    # Under --select RDP101 the RDP001 suppression was never exercised,
    # so it is not stale -- it just did not run.
    engine = build_engine(select=["RDP101", "RDP007"])
    findings = engine.lint_source(
        "x = 1  # raidp: noqa[RDP001] -- judged by the full run only\n",
        path=SIM_PATH,
    )
    assert findings == []


def test_rdp007_is_itself_suppressible():
    engine = build_engine()
    findings = engine.lint_source(
        "x = 1  # raidp: noqa[RDP001, RDP007] -- kept while a revert is staged\n",
        path=SIM_PATH,
    )
    assert findings == []
