"""Unit and property tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ec.gf256 import GF256

field_elem = st.integers(min_value=0, max_value=255)
nonzero_elem = st.integers(min_value=1, max_value=255)


def test_add_is_xor():
    assert GF256.add(0x53, 0xCA) == 0x53 ^ 0xCA
    assert GF256.sub(0x53, 0xCA) == 0x53 ^ 0xCA


def test_known_multiplication():
    # 0x53 * 0xCA = 0x01 under poly 0x11d (classic AES-adjacent example
    # recomputed for 0x11d): verify via exhaustive definition instead.
    def slow_mul(a, b):
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            carry = a & 0x80
            a = (a << 1) & 0xFF
            if carry:
                a ^= 0x11D & 0xFF
            b >>= 1
        return result

    for a in (1, 2, 3, 0x53, 0x8E, 0xFF):
        for b in (1, 2, 0x0A, 0xCA, 0xFF):
            assert GF256.mul(a, b) == slow_mul(a, b)


@given(field_elem, field_elem)
def test_mul_commutative(a, b):
    assert GF256.mul(a, b) == GF256.mul(b, a)


@given(field_elem, field_elem, field_elem)
def test_mul_associative(a, b, c):
    assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))


@given(field_elem, field_elem, field_elem)
def test_distributive(a, b, c):
    assert GF256.mul(a, b ^ c) == GF256.mul(a, b) ^ GF256.mul(a, c)


@given(nonzero_elem)
def test_inverse_roundtrip(a):
    assert GF256.mul(a, GF256.inv(a)) == 1


@given(field_elem, nonzero_elem)
def test_div_is_mul_by_inverse(a, b):
    assert GF256.div(a, b) == GF256.mul(a, GF256.inv(b))


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF256.div(1, 0)
    with pytest.raises(ZeroDivisionError):
        GF256.inv(0)


def test_generator_has_full_order():
    seen = set()
    value = 1
    for _ in range(255):
        seen.add(value)
        value = GF256.mul(value, 2)
    assert len(seen) == 255
    assert value == 1  # g^255 == 1


@given(nonzero_elem, st.integers(min_value=0, max_value=1000))
def test_pow_matches_repeated_mul(base, exponent):
    expected = 1
    for _ in range(exponent % 255):
        expected = GF256.mul(expected, base)
    # pow reduces the exponent mod 255 (the multiplicative group order).
    assert GF256.pow(base, exponent % 255) == expected


def test_log_exp_roundtrip():
    for a in range(1, 256):
        assert GF256.exp(GF256.log(a)) == a


def test_log_zero_raises():
    with pytest.raises(ValueError):
        GF256.log(0)


@given(field_elem, st.binary(min_size=1, max_size=64))
def test_mul_bytes_matches_scalar(scalar, data):
    arr = np.frombuffer(data, dtype=np.uint8)
    out = GF256.mul_bytes(scalar, arr)
    assert [GF256.mul(scalar, int(b)) for b in arr] == list(out)


@given(field_elem, st.binary(min_size=1, max_size=64))
def test_addmul_bytes_matches_scalar(scalar, data):
    arr = np.frombuffer(data, dtype=np.uint8)
    accum = np.zeros(len(arr), dtype=np.uint8)
    GF256.addmul_bytes(accum, scalar, arr)
    assert list(accum) == [GF256.mul(scalar, int(b)) for b in arr]


def test_matrix_inverse_roundtrip():
    matrix = GF256.vandermonde(4, 4)
    inverse = GF256.mat_invert(matrix)
    identity = GF256.mat_mul(matrix, inverse)
    assert identity == [[int(i == j) for j in range(4)] for i in range(4)]


def test_singular_matrix_raises():
    singular = [[1, 2], [1, 2]]
    with pytest.raises(ValueError):
        GF256.mat_invert(singular)


def test_vandermonde_submatrices_invertible():
    """The MDS property rests on this: any k rows of V are independent."""
    import itertools

    v = GF256.vandermonde(7, 3)
    for rows in itertools.combinations(range(7), 3):
        sub = [v[r] for r in rows]
        GF256.mat_invert(sub)  # must not raise


# ----------------------------------------------------------------------
# The vectorized multiplication table.
# ----------------------------------------------------------------------
def test_mul_table_matches_scalar_mul_on_random_sample():
    """Regression for the vectorized table build: it must agree with the
    scalar log/antilog ``GF256.mul`` everywhere (sampled) including the
    zero row/column."""
    from repro.ec.gf256 import _MUL_TABLE

    rng = np.random.default_rng(0xF1E1D)
    pairs = rng.integers(0, 256, size=(512, 2))
    for a, b in pairs:
        assert _MUL_TABLE[a, b] == GF256.mul(int(a), int(b))
    # Zero annihilates; one is the identity (full rows, not sampled).
    assert not _MUL_TABLE[0].any()
    assert not _MUL_TABLE[:, 0].any()
    assert np.array_equal(_MUL_TABLE[1], np.arange(256, dtype=np.uint8))
    assert np.array_equal(_MUL_TABLE[:, 1], np.arange(256, dtype=np.uint8))


def test_mul_table_is_symmetric():
    from repro.ec.gf256 import _MUL_TABLE

    assert np.array_equal(_MUL_TABLE, _MUL_TABLE.T)
