"""Tests for the raidpctl command-line tool."""

import pytest

from repro.tools.raidpctl import main


def test_layout_command(capsys):
    assert main(["layout", "--nodes", "5"]) == 0
    out = capsys.readouterr().out
    assert "5 disks" in out
    assert "1-sharing and 1-mirroring verified" in out


def test_layout_multi_disk(capsys):
    assert main(["layout", "--nodes", "4", "--disks-per-node", "2", "--per-disk", "3"]) == 0
    out = capsys.readouterr().out
    assert "8 disks" in out


def test_bench_command(capsys):
    assert main(["bench", "--system", "hdfs3", "--nodes", "6", "--data", "512MiB"]) == 0
    out = capsys.readouterr().out
    assert "dfsio-write" in out
    assert "throughput" in out


def test_bench_all_systems(capsys):
    for system in ("raidp", "raidp-rewrite", "hdfs2"):
        assert main(["bench", "--system", system, "--nodes", "6", "--data", "256MiB"]) == 0
    assert "MB/s" in capsys.readouterr().out


def test_drill_single(capsys):
    assert main(["drill", "--nodes", "8"]) == 0
    assert "drill passed" in capsys.readouterr().out


def test_drill_double(capsys):
    assert main(["drill", "--nodes", "8", "--double"]) == 0
    out = capsys.readouterr().out
    assert "reconstructed superchunk" in out
    assert "drill passed" in out


def test_tco_command(capsys):
    assert main(["tco", "--disk-cost", "100", "--server-cost", "10000", "--disks", "12"]) == 0
    out = capsys.readouterr().out
    assert "TCO savings" in out


def test_experiments_passthrough(capsys):
    assert main(["experiments", "fig1"]) == 0
    assert "design space" in capsys.readouterr().out


def test_trace_command_summarizes_a_recorded_drill(tmp_path, capsys):
    """Record a drill under a capture(), export, and summarize via CLI."""
    from repro.obs.export import write_trace
    from repro.obs.tracer import capture

    path = str(tmp_path / "drill.json")
    with capture() as tracer:
        assert main(["drill", "--nodes", "8", "--double"]) == 0
    write_trace(tracer, path)
    capsys.readouterr()
    assert main(["trace", path]) == 0
    out = capsys.readouterr().out
    assert "recovery [double]" in out
    assert "reconstruct" in out
    assert "coverage" in out


def test_trace_command_category_filter(tmp_path, capsys):
    from repro.obs.export import write_trace
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    tracer.register_run("t")
    tracer.complete("disk", "read", 0.0, 1.0)
    tracer.complete("net", "flow", 0.0, 2.0)
    path = str(tmp_path / "t.jsonl")
    write_trace(tracer, path)
    assert main(["trace", path, "--category", "net"]) == 0
    out = capsys.readouterr().out
    assert "net.flow" in out
    assert "disk.read" not in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
