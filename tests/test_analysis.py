"""Tests for the analytic models (Fig. 1, Table 1, Fig. 7, §4 costs)."""

import pytest

from repro.analysis.cost import (
    FIG7_BREAKDOWN,
    HYPERCONVERGED,
    SUPERMICRO,
    DatacenterCostModel,
    LstorBom,
    ServerExample,
    fig7_rows,
)
from repro.analysis.design_space import (
    design_space_points,
    storage_efficiency,
    verify_middle_point,
)
from repro.analysis.properties import (
    SCHEMES,
    Rating,
    property_matrix,
    render_matrix,
)
from repro.analysis.repair_traffic import (
    erasure_repair,
    raidp_repair,
    repair_traffic,
    replication_repair,
)


# ----------------------------------------------------------------------
# Repair traffic.
# ----------------------------------------------------------------------
def test_replication_repair_is_ideal():
    assert replication_repair(1).volume_per_lost_byte == 1.0
    assert replication_repair(2).volume_per_lost_byte == 1.0


def test_erasure_repair_costs_n():
    assert erasure_repair(10, 1).volume_per_lost_byte == 10.0


def test_raidp_single_failure_matches_replication():
    assert raidp_repair(15, 1).volume_per_lost_byte == 1.0


def test_raidp_double_failure_between_extremes():
    volume = raidp_repair(15, 2).volume_per_lost_byte
    assert 1.0 < volume < 10.0
    # With S=15: (2*15-2 + 15) / (2*15-1) = 43/29.
    assert volume == pytest.approx(43 / 29)


def test_repair_traffic_dispatch():
    assert repair_traffic("triplication").scheme == "replication"
    assert repair_traffic("rs", n=6).volume_per_lost_byte == 6.0
    with pytest.raises(ValueError):
        repair_traffic("parchive")


def test_repair_traffic_validation():
    with pytest.raises(ValueError):
        erasure_repair(0, 1)
    with pytest.raises(ValueError):
        raidp_repair(0, 2)


# ----------------------------------------------------------------------
# Fig. 1 design space.
# ----------------------------------------------------------------------
def test_storage_efficiencies():
    assert storage_efficiency("triplication") == pytest.approx(1 / 3)
    assert storage_efficiency("erasure", n=10) == pytest.approx(10 / 12)
    # RAIDP with 15 superchunks/disk: 15 useful per 31 raw.
    assert storage_efficiency("raidp", superchunks_per_disk=15) == pytest.approx(15 / 31)


def test_raidp_is_a_middle_point():
    points = design_space_points()
    assert verify_middle_point(points)


def test_design_point_rows_render():
    for point in design_space_points():
        assert point.scheme in point.row()


# ----------------------------------------------------------------------
# Table 1 property matrix.
# ----------------------------------------------------------------------
def expected_table1():
    """The published Table 1 symbols (bold cases included)."""
    return {
        "storage capacity": {"3rep": "-", "ec": "+", "raidp": "±"},
        "read parallelism / load balancing": {"3rep": "+", "ec": "-", "raidp": "±"},
        "degraded read": {"3rep": "+", "ec": "-", "raidp": "+"},
        "cpu consumption (sync latency)": {"3rep": "+", "ec": "-", "raidp": "±"},
        "disk sequentiality": {"3rep": "+", "ec": "-", "raidp": "+"},
        "write network: sub-stripe": {"3rep": "±", "ec": "-", "raidp": "+"},
        "write network: full stripe": {"3rep": "-", "ec": "+", "raidp": "±"},
        "write disk: sub-sector": {"3rep": "+", "ec": "-", "raidp": "-"},
        "write disk: sub-block": {"3rep": "+", "ec": "-", "raidp": "±"},
        "write disk: multi-block": {"3rep": "±", "ec": "+", "raidp": "-"},
        "repair traffic: single failure": {"3rep": "+", "ec": "-", "raidp": "+"},
        "repair traffic: dual failure": {"3rep": "+", "ec": "-", "raidp": "±"},
        "failure domain tolerance": {"3rep": "+", "ec": "+", "raidp": "-"},
    }


def test_property_matrix_matches_paper():
    """The derived ratings reproduce the published Table 1.

    Two deliberate deviations from the paper's exact symbols, both noted
    in DESIGN.md: the paper's 'write disk sub-sector' row marks 3rep '-'
    and ec/raidp '±' by a different accounting; and its 'failure domain
    tolerance' calls both 3rep and ec '+'.  We assert the orderings that
    matter: who is best, who is worst, and where RAIDP falls.
    """
    rows = {row.name: row for row in property_matrix()}
    expected = expected_table1()
    # Spot-check the headline rows exactly.
    exact_rows = [
        "storage capacity",
        "read parallelism / load balancing",
        "degraded read",
        "disk sequentiality",
        "write network: sub-stripe",
        "write network: full stripe",
        "repair traffic: single failure",
        "repair traffic: dual failure",
    ]
    for name in exact_rows:
        derived = {s: rows[name].ratings[s].value for s in SCHEMES}
        assert derived == expected[name], f"row {name!r}: {derived}"
    # The two bolded worst-cases of the paper must hold: RAIDP is worst
    # (or tied-worst) on multi-block disk writes and failure domains.
    assert rows["write disk: multi-block"].ratings["raidp"] is Rating.WORST
    worst_value = max(rows["failure domain tolerance"].values.values())
    assert rows["failure domain tolerance"].values["raidp"] == worst_value


def test_property_matrix_covers_all_rows():
    rows = property_matrix()
    assert len(rows) == 13
    for row in rows:
        assert set(row.ratings) == set(SCHEMES)


def test_render_matrix_is_ascii_table():
    text = render_matrix(property_matrix())
    assert "storage capacity" in text
    for scheme in SCHEMES:
        assert scheme in text


# ----------------------------------------------------------------------
# Section 4 cost model and Fig. 7.
# ----------------------------------------------------------------------
def test_lstor_bom_total():
    bom = LstorBom()
    assert bom.total == pytest.approx(30.0)


def test_third_disk_costs_66_percent_more_than_two_lstors():
    """The paper: a $100 disk is 66% more than two Lstors (~$60)."""
    model = DatacenterCostModel(derived_disk_cost=100.0)
    assert model.lstor_pair_vs_third_replica() == pytest.approx(100 / 60, rel=0.01)


def test_hyperconverged_derived_cost_near_3k():
    assert HYPERCONVERGED.derived_disk_cost == pytest.approx(3316.7, rel=0.01)
    assert HYPERCONVERGED.derived_multiplier > 20


def test_supermicro_derived_cost_triples_direct():
    assert SUPERMICRO.derived_multiplier == pytest.approx(2.56, rel=0.02)


def test_fig7_breakdown_sums_to_one():
    assert sum(fig7_rows().values()) == pytest.approx(1.0)
    assert fig7_rows()["servers"] == pytest.approx(0.57)


def test_infrastructure_overhead_is_43_percent():
    model = DatacenterCostModel()
    assert model.infrastructure_overhead_fraction() == pytest.approx(0.43)


def test_raidp_savings_approach_one_third():
    model = DatacenterCostModel()
    savings = model.raidp_savings_fraction()
    assert 0.30 < savings < 1 / 3


def test_savings_shrink_when_lstors_are_expensive():
    cheap = DatacenterCostModel()
    pricey = DatacenterCostModel(
        lstor=LstorBom(flash_and_dram=200, microcontroller=50, supercap_and_enclosure=100)
    )
    assert pricey.raidp_savings_fraction() < cheap.raidp_savings_fraction()


def test_breakdown_must_sum_to_one():
    with pytest.raises(ValueError):
        DatacenterCostModel(breakdown={"servers": 0.5})


def test_tco_validation():
    model = DatacenterCostModel()
    with pytest.raises(ValueError):
        model.tco_per_useful_disk(replication=0)
