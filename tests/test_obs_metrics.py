"""The cluster-wide metrics registry over live component instruments."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.hdfs.config import DfsConfig
from repro.obs.metrics import cluster_metrics, cluster_snapshot
from repro.sim.cluster import ClusterSpec


@pytest.fixture(scope="module")
def loaded_cluster():
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(block_size=units.MiB, replication=2),
        raidp=RaidpConfig(),
        superchunk_size=4 * units.MiB,
        payload_mode="tokens",
        seed=11,
    )

    def workload():
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/m/f{index}", 2 * units.MiB)

    dfs.sim.run_process(workload())
    return dfs


def test_snapshot_covers_every_component(loaded_cluster):
    snap = cluster_snapshot(loaded_cluster)
    disks = [dn.disk.name for dn in loaded_cluster.datanodes]
    for disk in disks:
        assert f"disk_writes{{disk={disk}}}" in snap["counters"]
        assert f"disk_queue_depth{{disk={disk}}}" in snap["gauges"]
        assert f"disk_io_latency{{disk={disk}}}" in snap["histograms"]
    assert "net_bytes_total" in snap["counters"]
    assert "net_active_flows" in snap["gauges"]
    assert "blocks_at_risk" in snap["gauges"]
    assert any(key.startswith("journal_outstanding{") for key in snap["gauges"])


def test_snapshot_reflects_workload_activity(loaded_cluster):
    dfs = loaded_cluster
    snap = cluster_snapshot(dfs)
    total_writes = sum(
        value for key, value in snap["counters"].items()
        if key.startswith("disk_writes{")
    )
    assert total_writes > 0
    assert snap["counters"]["net_bytes_total"] == dfs.total_network_bytes()
    # The workload drained: nothing in flight, nothing at risk.
    assert snap["gauges"]["net_active_flows"]["current"] == 0.0
    assert snap["gauges"]["net_active_flows"]["max"] >= 1.0
    assert snap["gauges"]["blocks_at_risk"]["current"] == 0.0
    # Disk latency histograms saw every timed operation (I/Os + syncs).
    sampled = sum(
        row["count"] for key, row in snap["histograms"].items()
        if key.startswith("disk_io_latency{")
    )
    assert sampled == sum(
        dn.disk.stats.ios + dn.disk.stats.syncs for dn in dfs.datanodes
    )


def test_counter_views_track_later_activity_without_reregistration(loaded_cluster):
    """Regression: counters must be live views, not registration-time copies.

    An earlier registry design snapshotted component counts into owned
    Counters at build time, so any registry built before a workload (the
    sampler's situation) reported zeros forever.
    """
    dfs = loaded_cluster
    metrics = cluster_metrics(dfs)
    before = metrics.get("net_bytes_total")

    def more_work():
        yield from dfs.clients[0].write_file("/m/live-view-extra", units.MiB)

    dfs.sim.run_process(more_work())
    after = metrics.get("net_bytes_total")
    assert after > before
    assert after == dfs.total_network_bytes()
    # The view itself refuses mutation: the component owns the count.
    view = metrics._counters["net_bytes_total"]
    with pytest.raises(TypeError, match="read-only"):
        view.add(1)
    # Live gauge views are per-component mirrors, not aggregation
    # targets; folding them into another registry must fail loudly.
    from repro.sim.stats import MetricSet

    with pytest.raises(TypeError, match="live gauge view"):
        MetricSet().merge(metrics)


def test_registry_is_live_not_a_copy(loaded_cluster):
    dfs = loaded_cluster
    metrics = cluster_metrics(dfs)
    disk = dfs.datanodes[0].disk
    key = f"disk_io_latency{{disk={disk.name}}}"
    before = metrics.as_dict()["histograms"][key]["count"]
    disk.io_latency.observe(0.001)
    after = metrics.as_dict()["histograms"][key]["count"]
    assert after == before + 1
    # Re-registering into the same set refreshes counters in place.
    again = cluster_metrics(dfs, metrics)
    assert again is metrics
