"""Integration tests for failure recovery (paper §3.3 and §6.4).

The clusters here use sparse layouts (fewer superchunks per disk than the
N-1 maximum) so that legal re-mirroring targets exist after failures --
exactly the headroom the paper says recovery depends on.
"""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.errors import RecoveryError
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def sparse_cluster(num_nodes=8, per_disk=3, payload_mode="bytes", **raidp_kwargs):
    """A RaidpCluster whose layout leaves re-mirroring headroom."""
    config = DfsConfig(block_size=units.MiB, replication=2)
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=config,
        raidp=RaidpConfig(**raidp_kwargs),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=per_disk,
        payload_mode=payload_mode,
    )


def write_some_data(dfs, files=4, size=3 * units.MiB):
    def body():
        procs = [
            dfs.sim.process(dfs.clients[i % len(dfs.clients)].write_file(f"/f{i}", size))
            for i in range(files)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(body())


# ----------------------------------------------------------------------
# Single failure.
# ----------------------------------------------------------------------
def test_single_failure_plan_is_legal():
    dfs = sparse_cluster()
    write_some_data(dfs)
    manager = RecoveryManager(dfs)
    victim = dfs.datanodes[0].name
    dfs.namenode.mark_datanode_dead(victim)
    orphans = {sc.sc_id for sc in dfs.layout.remove_disk(victim)}
    plan = manager.plan_single_failure(victim)
    assert {sc for sc, _s, _r in plan} == orphans
    receivers = [r for _sc, _s, r in plan]
    assert len(set(receivers)) == len(receivers)  # parallelism: one each
    for sc, sender, receiver in plan:
        assert dfs.layout.shared(sender, receiver) is None


def test_single_failure_recovery_restores_mirroring():
    dfs = sparse_cluster()
    write_some_data(dfs)
    manager = RecoveryManager(dfs)
    victim = dfs.datanodes[2].name
    report = manager.recover_single_failure(victim)
    assert dfs.layout.is_fully_mirrored
    dfs.layout.verify()
    dfs.verify_mirrors()
    dfs.verify_parity()
    assert report.duration > 0 or not report.remirrored


def test_single_failure_restores_replica_counts():
    dfs = sparse_cluster()
    write_some_data(dfs)
    manager = RecoveryManager(dfs)
    victim = dfs.datanodes[1].name
    manager.recover_single_failure(victim)
    for locations in dfs.namenode.all_blocks():
        live = [
            n for n in locations.datanodes if dfs.namenode.datanode(n).alive
        ]
        assert len(live) >= 2, f"{locations.block.name} under-replicated"


def test_greedy_and_hungarian_planners_both_work():
    durations = {}
    for planner in ("greedy", "hungarian"):
        dfs = sparse_cluster(payload_mode="tokens")
        write_some_data(dfs)
        manager = RecoveryManager(dfs)
        options = RecoveryOptions(planner=planner)
        report = manager.recover_single_failure(dfs.datanodes[0].name, options)
        assert dfs.layout.is_fully_mirrored
        durations[planner] = report.duration
    assert set(durations) == {"greedy", "hungarian"}


def test_hungarian_balances_load_at_least_as_well_as_greedy():
    loads = {}
    for planner in ("greedy", "hungarian"):
        dfs = sparse_cluster(payload_mode="tokens")
        write_some_data(dfs, files=8)
        manager = RecoveryManager(dfs)
        manager.recover_single_failure(
            dfs.datanodes[0].name, RecoveryOptions(planner=planner)
        )
        per_disk = [
            dfs.map.load_of_disk(dn.name) for dn in dfs.datanodes if dn.alive
        ]
        loads[planner] = max(per_disk) - min(per_disk)
    assert loads["hungarian"] <= loads["greedy"] + 1


# ----------------------------------------------------------------------
# Double failure.
# ----------------------------------------------------------------------
def pick_sharing_pair(dfs):
    for a in dfs.layout.disks:
        for b in dfs.layout.disks:
            if a < b and dfs.layout.shared(a, b) is not None:
                return a, b
    raise AssertionError("no sharing pair in layout")


def test_double_failure_reconstructs_lost_superchunk_bit_exact():
    dfs = sparse_cluster(num_nodes=8, per_disk=3, payload_mode="bytes")
    write_some_data(dfs, files=10, size=4 * units.MiB)
    a, b = pick_sharing_pair(dfs)
    shared = dfs.layout.shared(a, b)
    # Remember the content that only lives on the shared superchunk.
    lost_blocks = {}
    for slot, name in dfs.map.blocks_in(shared).items():
        datanode = dfs.datanode_by_name(a)
        if datanode.has_block(name):
            lost_blocks[name] = datanode.content_of(name)
    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(a, b)
    assert report.reconstructed_sc == shared
    for name, original in lost_blocks.items():
        locations = next(
            loc for loc in dfs.namenode.all_blocks() if loc.block.name == name
        )
        live = [n for n in locations.datanodes if dfs.namenode.datanode(n).alive]
        assert len(live) >= 2
        for node_name in live:
            recovered = dfs.datanode_by_name(node_name).content_of(name)
            assert recovered == original, f"bit rot in {name} on {node_name}"


def test_double_failure_restores_full_mirroring_and_parity():
    dfs = sparse_cluster(num_nodes=8, per_disk=3, payload_mode="bytes")
    write_some_data(dfs, files=8)
    a, b = pick_sharing_pair(dfs)
    manager = RecoveryManager(dfs)
    manager.recover_double_failure(a, b)
    dfs.layout.verify()
    assert dfs.layout.is_fully_mirrored
    dfs.verify_mirrors()
    dfs.verify_parity()


def test_double_failure_without_shared_superchunk():
    dfs = sparse_cluster(num_nodes=9, per_disk=2, payload_mode="tokens")
    write_some_data(dfs, files=4)
    non_sharing = None
    for a in dfs.layout.disks:
        for b in dfs.layout.disks:
            if a < b and dfs.layout.shared(a, b) is None:
                non_sharing = (a, b)
                break
        if non_sharing:
            break
    assert non_sharing, "expected a non-sharing pair in a sparse layout"
    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(*non_sharing)
    assert report.reconstructed_sc is None
    dfs.verify_mirrors()


def test_double_failure_uses_other_lstor_when_first_failed():
    dfs = sparse_cluster(num_nodes=8, per_disk=3, payload_mode="bytes")
    write_some_data(dfs, files=8)
    a, b = pick_sharing_pair(dfs)
    dfs.datanode_by_name(a).lstors.primary.fail()
    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(a, b)
    assert report.reconstructed_sc is not None
    dfs.verify_mirrors()


def test_double_failure_with_both_lstors_dead_is_data_loss():
    from repro.errors import DataLossError

    dfs = sparse_cluster(num_nodes=8, per_disk=3, payload_mode="bytes")
    write_some_data(dfs, files=8)
    a, b = pick_sharing_pair(dfs)
    dfs.datanode_by_name(a).lstors.primary.fail()
    dfs.datanode_by_name(b).lstors.primary.fail()
    manager = RecoveryManager(dfs)
    with pytest.raises(DataLossError):
        manager.recover_double_failure(a, b)


def test_reconstruction_lock_modes_and_chunk_sizes_run():
    for lock_mode in ("byte_range", "superchunk"):
        for chunk in (units.MiB, 2 * units.MiB):
            dfs = sparse_cluster(num_nodes=8, per_disk=3, payload_mode="tokens")
            write_some_data(dfs, files=6)
            a, b = pick_sharing_pair(dfs)
            manager = RecoveryManager(dfs)
            options = RecoveryOptions(lock_mode=lock_mode, chunk_size=chunk)
            report = manager.recover_double_failure(a, b, options=options)
            assert report.duration > 0


def test_recovery_options_validation():
    with pytest.raises(ValueError):
        RecoveryOptions(lock_mode="rcu")
    with pytest.raises(ValueError):
        RecoveryOptions(planner="oracle")
    with pytest.raises(ValueError):
        RecoveryOptions(chunk_size=0)


# ----------------------------------------------------------------------
# Freeze ordering (regression for an RDP002 finding).
# ----------------------------------------------------------------------
def test_double_recovery_freezes_superchunks_in_sorted_order():
    """The freeze set was once iterated in set (hash) order; the linter
    flagged it (RDP002) and the fix sorts it.  Lock the ordering in so
    the freeze-window trace and fingerprints stay bitwise reproducible
    regardless of PYTHONHASHSEED."""
    dfs = sparse_cluster(num_nodes=8, per_disk=3, payload_mode="tokens")
    write_some_data(dfs, files=6)
    a, b = pick_sharing_pair(dfs)
    frozen_order = []
    unfrozen_order = []
    original_freeze = dfs.map.freeze
    original_unfreeze = dfs.map.unfreeze

    def record_freeze(sc_id):
        frozen_order.append(sc_id)
        return original_freeze(sc_id)

    def record_unfreeze(sc_id):
        unfrozen_order.append(sc_id)
        return original_unfreeze(sc_id)

    dfs.map.freeze = record_freeze
    dfs.map.unfreeze = record_unfreeze
    manager = RecoveryManager(dfs)
    manager.recover_double_failure(a, b)
    assert frozen_order, "double recovery froze nothing"
    assert frozen_order == sorted(frozen_order)
    assert unfrozen_order == sorted(unfrozen_order)
    assert sorted(unfrozen_order) == sorted(frozen_order)
