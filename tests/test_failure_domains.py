"""Tests for failure-domain-aware layouts and multi-disk servers (§3.1)."""

import itertools

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.layout import Layout, LayoutSpec, domain_aware_layout
from repro.core.monitor import ClusterMonitor
from repro.core.recovery import RecoveryManager
from repro.errors import CapacityError, LayoutError
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec

SPEC = LayoutSpec(superchunk_size=4 * units.MiB, block_size=units.MiB)


def domains(servers=4, disks=3):
    return {
        f"s{server}-d{disk}": f"s{server}"
        for server in range(servers)
        for disk in range(disks)
    }


# ----------------------------------------------------------------------
# Domain constraints on Layout.
# ----------------------------------------------------------------------
def test_same_domain_pairing_rejected():
    layout = Layout(["a-0", "a-1", "b-0"], SPEC, domains={"a-0": "a", "a-1": "a", "b-0": "b"})
    with pytest.raises(LayoutError, match="failure domain"):
        layout.add_superchunk("a-0", "a-1")
    layout.add_superchunk("a-0", "b-0")  # cross-domain is fine
    assert not layout.can_pair("a-0", "a-1")


def test_domains_must_cover_all_disks():
    with pytest.raises(LayoutError):
        Layout(["x", "y"], SPEC, domains={"x": "a"})


def test_remirror_respects_domains():
    disk_map = {"a-0": "a", "a-1": "a", "b-0": "b", "c-0": "c"}
    layout = Layout(list(disk_map), SPEC, domains=disk_map)
    sc = layout.add_superchunk("a-0", "b-0")
    layout.remove_disk("b-0")
    with pytest.raises(LayoutError, match="failure domain"):
        layout.remirror(sc.sc_id, "a-1")
    layout.remirror(sc.sc_id, "c-0")
    layout.verify()


def test_domain_aware_layout_builder():
    layout = domain_aware_layout(domains(servers=4, disks=3), superchunks_per_disk=4, spec=SPEC)
    layout.verify()
    for disk in layout.disks:
        assert len(layout.superchunks_of(disk)) == 4
    for sc in layout.superchunks.values():
        a, b = sorted(sc.disks)
        assert layout.domain_of(a) != layout.domain_of(b)
    # 1-sharing across the whole fleet.
    for a, b in itertools.combinations(layout.disks, 2):
        shared = [s for s in layout.superchunks.values() if s.disks == frozenset((a, b))]
        assert len(shared) <= 1


def test_domain_aware_layout_needs_two_domains():
    with pytest.raises(LayoutError):
        domain_aware_layout({"x-0": "x", "x-1": "x"}, 1, spec=SPEC)


def test_domain_aware_layout_capacity_error():
    # Two domains x 1 disk: each disk can host at most 1 superchunk pair.
    with pytest.raises(CapacityError):
        domain_aware_layout({"a-0": "a", "b-0": "b"}, 3, spec=SPEC)


# ----------------------------------------------------------------------
# Multi-disk RAIDP clusters.
# ----------------------------------------------------------------------
def multi_disk_cluster(num_nodes=4, disks_per_node=3, per_disk=4):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes, disks_per_node=disks_per_node),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=per_disk,
        payload_mode="bytes",
    )


def test_multi_disk_cluster_requires_explicit_density():
    with pytest.raises(LayoutError):
        RaidpCluster(
            spec=ClusterSpec(num_nodes=4, disks_per_node=2),
            config=DfsConfig(block_size=units.MiB, replication=2),
            superchunk_size=4 * units.MiB,
            payload_mode="tokens",
        )


def test_multi_disk_cluster_writes_and_verifies():
    dfs = multi_disk_cluster()
    assert len(dfs.datanodes) == 12  # 4 servers x 3 disks
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    dfs.verify_mirrors()
    dfs.verify_parity()
    # Replicas always span servers, never two disks of one box.
    for block in dfs.namenode.file_blocks("/f"):
        loc = dfs.namenode.locate_block(block.block_id)
        servers = {dfs.layout.domain_of(n) for n in loc.datanodes}
        assert len(servers) == 2


def test_writer_local_replica_on_multi_disk_server():
    dfs = multi_disk_cluster()
    client = dfs.client(2)  # runs on server n2
    dfs.sim.run_process(client.write_file("/f", 4 * units.MiB))
    local = 0
    for block in dfs.namenode.file_blocks("/f"):
        loc = dfs.namenode.locate_block(block.block_id)
        if dfs.layout.domain_of(loc.datanodes[0]) == "n2":
            local += 1
    assert local >= 1  # the preference holds when capacity allows


def test_whole_server_failure_loses_nothing():
    """The payoff of domain awareness: a server failure (all its disks)
    destroys no superchunk -- recovery is pure re-replication, with no
    Lstor reconstruction needed (paper §3.3's 12-disk example)."""
    dfs = multi_disk_cluster(num_nodes=5, disks_per_node=2, per_disk=3)

    def writers():
        procs = [
            dfs.sim.process(c.write_file(f"/f{i}", 3 * units.MiB))
            for i, c in enumerate(dfs.clients)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(writers())
    victim_node = dfs.cluster.nodes[0]
    victim_dns = [dn.name for dn in dfs.datanodes if dn.node is victim_node]
    # No two disks of one server ever share a superchunk...
    for a in victim_dns:
        for b in victim_dns:
            if a < b:
                assert dfs.layout.shared(a, b) is None
    victim_node.fail()
    manager = RecoveryManager(dfs)
    reports = [manager.recover_single_failure(name) for name in victim_dns]
    # ...so every recovery is plain re-replication.
    assert all(r.reconstructed_sc is None for r in reports)
    assert dfs.layout.is_fully_mirrored
    dfs.verify_mirrors()
    dfs.verify_parity()


def test_monitor_handles_server_failure_without_reconstruction():
    dfs = multi_disk_cluster(num_nodes=5, disks_per_node=2, per_disk=3)

    def writers():
        procs = [
            dfs.sim.process(c.write_file(f"/f{i}", 2 * units.MiB))
            for i, c in enumerate(dfs.clients)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(writers())
    monitor = ClusterMonitor(dfs)
    monitor.start()

    def scenario():
        yield dfs.sim.timeout(5.0)
        dfs.cluster.nodes[1].fail()
        yield dfs.sim.timeout(90.0)

    done = dfs.sim.process(scenario())
    dfs.sim.run(until=200.0)
    assert done.triggered
    monitor.stop()
    dfs.sim.run()
    assert monitor.reports
    assert all(r.reconstructed_sc is None for r in monitor.reports)
    dfs.verify_mirrors()
    dfs.verify_parity()
