"""Tests for §3.4's data-path behavior during failures: degraded reads
through the Lstor and write diversion from recovering superchunks."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.recovery import RecoveryManager
from repro.errors import BlockMissingError
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def cluster(payload_mode="bytes", num_nodes=6, per_disk=None):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=per_disk,
        payload_mode=payload_mode,
    )


def fail_both_replicas(dfs, locations):
    for name in locations.datanodes:
        datanode = dfs.datanode_by_name(name)
        datanode.disk.fail()
        dfs.namenode.datanode(name).alive = False
    return locations


# ----------------------------------------------------------------------
# Degraded reads.
# ----------------------------------------------------------------------
def test_degraded_read_returns_exact_content():
    dfs = cluster()
    writer = dfs.client(0)
    dfs.sim.run_process(writer.write_file("/f", 3 * units.MiB))
    block = dfs.namenode.file_blocks("/f")[0]
    locations = dfs.namenode.locate_block(block.block_id)
    original = dfs.datanode_by_name(locations.datanodes[0]).content_of(block.name)
    fail_both_replicas(dfs, locations)
    reader = next(
        c for c in dfs.clients if c.node.name not in locations.datanodes
    )

    def body():
        payload = yield from reader.read_block(locations)
        return payload

    payload = dfs.sim.run_process(body())
    assert payload == original
    assert reader.stats_degraded_reads == 1


def test_degraded_read_burdens_many_nodes():
    """Like an erasure-coded degraded read, the fallback moves roughly
    one block per surviving superchunk of the failed disk."""
    dfs = cluster(payload_mode="tokens")
    writer = dfs.client(0)
    dfs.sim.run_process(writer.write_file("/f", units.MiB))
    locations = dfs.namenode.locate_block(dfs.namenode.file_blocks("/f")[0].block_id)
    fail_both_replicas(dfs, locations)
    reader = next(c for c in dfs.clients if c.node.name not in locations.datanodes)
    before = dfs.total_network_bytes()
    dfs.sim.run_process(reader.read_block(locations))
    moved = dfs.total_network_bytes() - before
    siblings = len(dfs.layout.superchunks_of(locations.datanodes[0]))
    assert moved == siblings * locations.block.size  # parity + N-1 siblings


def test_degraded_read_fails_without_any_lstor():
    dfs = cluster(payload_mode="tokens")
    writer = dfs.client(0)
    dfs.sim.run_process(writer.write_file("/f", units.MiB))
    locations = dfs.namenode.locate_block(dfs.namenode.file_blocks("/f")[0].block_id)
    fail_both_replicas(dfs, locations)
    for name in locations.datanodes:
        dfs.datanode_by_name(name).node.alive = False  # whole servers gone
    reader = next(c for c in dfs.clients if c.node.name not in locations.datanodes)
    with pytest.raises(BlockMissingError):
        dfs.sim.run_process(reader.read_block(locations))


def test_normal_reads_unaffected():
    dfs = cluster(payload_mode="tokens")
    writer = dfs.client(0)

    def body():
        yield from writer.write_file("/f", 2 * units.MiB)
        total = yield from writer.read_file("/f")
        return total

    assert dfs.sim.run_process(body()) == 2 * units.MiB
    assert writer.stats_degraded_reads == 0


# ----------------------------------------------------------------------
# Write diversion.
# ----------------------------------------------------------------------
def test_frozen_superchunks_reject_new_placements():
    dfs = cluster(payload_mode="tokens", num_nodes=8, per_disk=3)
    frozen = dfs.layout.superchunks_of("n0")
    for sc_id in frozen:
        dfs.map.freeze(sc_id)
    client = dfs.client(1)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    for block in dfs.namenode.file_blocks("/f"):
        locations = dfs.namenode.locate_block(block.block_id)
        assert locations.sc_id not in frozen


def test_recovery_unfreezes_when_done():
    dfs = cluster(payload_mode="tokens", num_nodes=8, per_disk=3)

    def writers():
        procs = [
            dfs.sim.process(c.write_file(f"/f{i}", 2 * units.MiB))
            for i, c in enumerate(dfs.clients[:4])
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(writers())
    manager = RecoveryManager(dfs)
    affected = list(dfs.layout.superchunks_of("n0"))
    manager.recover_single_failure("n0")
    assert all(not dfs.map.is_frozen(sc) for sc in affected)
    # And post-recovery writes can use the re-mirrored superchunks again.
    client = dfs.client(1)
    dfs.sim.run_process(client.write_file("/post", 4 * units.MiB))
    dfs.verify_mirrors()
