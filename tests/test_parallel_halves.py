"""Tests for parallel-halves reconstruction (§3.3's dual-Lstor rebuild)."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.core.recovery import RecoveryManager, RecoveryOptions
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def sparse_cluster(payload_mode="bytes"):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=8),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        superchunks_per_disk=3,
        payload_mode=payload_mode,
    )


def write_some(dfs, files=10):
    def body():
        procs = [
            dfs.sim.process(
                dfs.clients[i % len(dfs.clients)].write_file(f"/f{i}", 4 * units.MiB)
            )
            for i in range(files)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(body())


def sharing_pair(dfs):
    return next(
        (a, b)
        for a in dfs.layout.disks
        for b in dfs.layout.disks
        if a < b and dfs.layout.shared(a, b) is not None
    )


def test_parallel_halves_is_bit_exact():
    dfs = sparse_cluster()
    write_some(dfs)
    a, b = sharing_pair(dfs)
    shared = dfs.layout.shared(a, b)
    originals = {
        name: dfs.datanode_by_name(a).content_of(name)
        for name in dfs.map.blocks_in(shared).values()
        if dfs.datanode_by_name(a).has_block(name)
    }
    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(
        a, b, options=RecoveryOptions(parallel_halves=True)
    )
    assert report.reconstructed_sc == shared
    dfs.verify_mirrors()
    dfs.verify_parity()
    for name, original in originals.items():
        locations = next(
            loc for loc in dfs.namenode.all_blocks() if loc.block.name == name
        )
        for home in locations.datanodes:
            datanode = dfs.datanode_by_name(home)
            if datanode.alive:
                assert datanode.content_of(name) == original


def test_parallel_halves_speeds_up_reconstruction():
    """With two receivers the incast bottleneck halves: the paper's
    'each set used to rebuild half' claim, on the Table 2 geometry."""

    def duration(parallel):
        dfs = RaidpCluster(
            spec=ClusterSpec(num_nodes=16),
            config=DfsConfig(replication=2),
            raidp=RaidpConfig(),
            superchunk_size=6 * units.GiB,
            payload_mode="tokens",
        )
        manager = RecoveryManager(dfs)
        options = RecoveryOptions(parallel_halves=parallel)
        report = manager.recover_double_failure(
            "n0", "n1", options=options, remirror_rest=False, install=False
        )
        return report.duration

    single = duration(False)
    halves = duration(True)
    assert halves < single * 0.65  # roughly 2x, minus tail effects


def test_parallel_halves_falls_back_when_one_lstor_dead():
    dfs = sparse_cluster()
    write_some(dfs)
    a, b = sharing_pair(dfs)
    dfs.datanode_by_name(b).lstors.primary.fail()
    manager = RecoveryManager(dfs)
    report = manager.recover_double_failure(
        a, b, options=RecoveryOptions(parallel_halves=True)
    )
    assert report.reconstructed_sc is not None
    dfs.verify_mirrors()
