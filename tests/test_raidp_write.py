"""Integration tests for the RAIDP write path (placement, parity, journal)."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def small_raidp(
    num_nodes=5,
    payload_mode="bytes",
    block_size=units.MiB,
    superchunk_blocks=4,
    **raidp_kwargs,
):
    config = DfsConfig(
        block_size=block_size, packet_size=64 * units.KiB, replication=2
    )
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=config,
        raidp=RaidpConfig(**raidp_kwargs),
        superchunk_size=superchunk_blocks * block_size,
        payload_mode=payload_mode,
    )


def test_blocks_placed_on_sharing_pairs():
    dfs = small_raidp()
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", 6 * units.MiB))
    for block in dfs.namenode.file_blocks("/f"):
        locations = dfs.namenode.locate_block(block.block_id)
        assert locations.replica_count == 2
        assert locations.sc_id is not None
        sc = dfs.layout.superchunk(locations.sc_id)
        assert set(locations.datanodes) == set(sc.disks)


def test_mirrors_hold_identical_content():
    dfs = small_raidp()
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    dfs.verify_mirrors()


def test_parity_consistent_after_writes():
    dfs = small_raidp()
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    dfs.verify_parity()


def test_parity_consistent_in_token_mode():
    dfs = small_raidp(payload_mode="tokens")
    client = dfs.client(1)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    dfs.verify_parity()


def test_parity_consistent_after_rewrites():
    dfs = small_raidp(update_oriented=True)
    client = dfs.client(0)

    def body():
        yield from client.write_file("/f", 4 * units.MiB)
        yield from client.rewrite_file("/f")
        yield from client.rewrite_file("/f")

    dfs.sim.run_process(body())
    dfs.verify_parity()
    dfs.verify_mirrors()


def test_parity_consistent_after_delete_and_reuse():
    dfs = small_raidp()
    client = dfs.client(0)

    def body():
        yield from client.write_file("/a", 4 * units.MiB)
        yield from client.delete_file("/a")
        yield from client.write_file("/b", 4 * units.MiB)

    dfs.sim.run_process(body())
    dfs.verify_parity()


def test_journals_drain_after_writes():
    dfs = small_raidp()
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    assert dfs.journals_empty()
    for datanode in dfs.datanodes:
        journal = datanode.lstors.primary.journal
        assert journal.total_appends == journal.total_clears


def test_journal_outstanding_stays_small():
    """The paper observes at most one or two outstanding records."""
    dfs = small_raidp()

    def body():
        procs = [
            dfs.sim.process(c.write_file(f"/f{i}", 4 * units.MiB))
            for i, c in enumerate(dfs.clients)
        ]
        yield dfs.sim.all_of(procs)

    dfs.sim.run_process(body())
    for datanode in dfs.datanodes:
        gauge = datanode.lstors.primary.journal.outstanding_gauge
        # Bounded by the number of concurrent writers targeting the node,
        # and small on time-weighted average (the paper observes 1-2).
        assert gauge.max_value <= len(dfs.clients)
        assert gauge.average(dfs.sim.now) <= 2.0


def test_preallocation_fills_slots_and_parity():
    dfs = small_raidp(update_oriented=True)
    dfs.verify_parity()
    datanode = dfs.datanodes[0]
    sc_id = dfs.layout.superchunks_of(datanode.name)[0]
    assert not datanode.slot_payload(sc_id, 0).is_zero()


def test_update_oriented_reads_before_write():
    """The re-write variant must read old data: 2 reads + 2 writes per
    block across the two replicas (the paper's 4-I/O argument)."""
    dfs = small_raidp(update_oriented=True, payload_mode="tokens")
    client = dfs.client(0)
    before_reads = sum(dn.disk.stats.reads for dn in dfs.datanodes)
    dfs.sim.run_process(client.write_file("/f", 4 * units.MiB))
    reads = sum(dn.disk.stats.reads for dn in dfs.datanodes) - before_reads
    blocks = len(dfs.namenode.file_blocks("/f"))
    assert reads == 2 * blocks


def test_base_variant_never_reads_before_write():
    dfs = small_raidp(update_oriented=False, payload_mode="tokens")
    client = dfs.client(0)
    dfs.sim.run_process(client.write_file("/f", 8 * units.MiB))
    assert all(dn.disk.stats.reads == 0 for dn in dfs.datanodes)


def test_network_volume_is_one_replica_copy():
    """RAIDP halves network volume vs triplication: one remote copy per
    block (plus tiny acks)."""
    dfs = small_raidp(payload_mode="tokens")
    client = dfs.client(0)
    nbytes = 8 * units.MiB
    dfs.sim.run_process(client.write_file("/f", nbytes))
    traffic = dfs.total_network_bytes()
    assert nbytes <= traffic < nbytes * 1.01  # data + acks only


def test_unoptimized_streaming_is_much_slower():
    runtimes = {}
    for optimized in (True, False):
        dfs = small_raidp(payload_mode="tokens", optimized=optimized)

        def writers(dfs=dfs):
            procs = [
                dfs.sim.process(c.write_file(f"/f{i}", 4 * units.MiB))
                for i, c in enumerate(dfs.clients[:2])
            ]
            yield dfs.sim.all_of(procs)

        dfs.sim.run_process(writers())
        runtimes[optimized] = dfs.sim.now
    assert runtimes[False] > 5 * runtimes[True]


def test_writer_lock_prevents_ping_pong_seeks():
    seeks = {}
    for optimized in (True, False):
        dfs = small_raidp(payload_mode="tokens", optimized=optimized)

        def writers(dfs=dfs):
            procs = [
                dfs.sim.process(c.write_file(f"/f{i}", 4 * units.MiB))
                for i, c in enumerate(dfs.clients[:3])
            ]
            yield dfs.sim.all_of(procs)

        dfs.sim.run_process(writers())
        seeks[optimized] = sum(dn.disk.stats.seeks for dn in dfs.datanodes)
    assert seeks[False] > seeks[True]


def test_raidp_forces_two_replicas():
    config = DfsConfig(block_size=units.MiB, replication=3)
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=4),
        config=config,
        superchunk_size=4 * units.MiB,
    )
    assert dfs.config.replication == 2


def test_journal_requires_parity():
    with pytest.raises(ValueError):
        RaidpConfig(enable_parity=False, enable_journal=True)


def test_ablation_configs_run():
    for parity, journal in ((False, False), (True, False), (True, True)):
        dfs = small_raidp(
            payload_mode="tokens", enable_parity=parity, enable_journal=journal
        )
        client = dfs.client(0)
        dfs.sim.run_process(client.write_file("/f", 4 * units.MiB))
        if parity:
            dfs.verify_parity()


def test_read_after_write_roundtrip():
    dfs = small_raidp()
    client = dfs.client(0)

    def body():
        yield from client.write_file("/f", 6 * units.MiB)
        total = yield from client.read_file("/f")
        return total

    assert dfs.sim.run_process(body()) == 6 * units.MiB
