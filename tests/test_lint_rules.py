"""Positive/negative snippet tests for every RDP rule.

Each rule gets at least one snippet that must fire and one that must
stay silent; the negatives encode the blessed idioms (seeded RNGs,
``sorted(...)`` wrapping, ``fsum``) so a future rule change that starts
flagging them breaks loudly here.
"""

from repro.lint.engine import FileContext, LintConfig, LintEngine
from repro.lint.rules import (
    AnnotationRule,
    BlockingCallRule,
    FloatSumRule,
    TraceTaxonomyRule,
    UnorderedIterationRule,
    WallClockRule,
    default_rules,
)

SIM_PATH = "src/repro/sim/fake.py"
CORE_PATH = "src/repro/core/fake.py"


def run_rule(rule, source, path=SIM_PATH):
    engine = LintEngine([rule], LintConfig())
    return engine.lint_source(source, path=path)


# ----------------------------------------------------------------------
# RDP001 -- wall clock / entropy.
# ----------------------------------------------------------------------
def test_rdp001_flags_time_time():
    findings = run_rule(WallClockRule(), "import time\nt = time.time()\n")
    assert [f.rule for f in findings] == ["RDP001"]


def test_rdp001_flags_module_level_random():
    findings = run_rule(WallClockRule(), "import random\nx = random.random()\n")
    assert len(findings) == 1
    assert "seeded" in findings[0].message


def test_rdp001_flags_unseeded_rng_constructors():
    source = (
        "import random\nimport numpy as np\n"
        "a = random.Random()\n"
        "b = np.random.default_rng()\n"
    )
    findings = run_rule(WallClockRule(), source)
    assert len(findings) == 2


def test_rdp001_flags_hash_outside_hash_method():
    findings = run_rule(WallClockRule(), "key = hash(('a', 1))\n")
    assert [f.rule for f in findings] == ["RDP001"]


def test_rdp001_allows_seeded_rngs_and_dunder_hash():
    source = (
        "import random\nimport numpy as np\n"
        "a = random.Random(42)\n"
        "b = np.random.default_rng(7)\n"
        "class Key:\n"
        "    def __hash__(self):\n"
        "        return hash(self.__dict__['v'])\n"
    )
    assert run_rule(WallClockRule(), source) == []


# ----------------------------------------------------------------------
# RDP002 -- unordered iteration.
# ----------------------------------------------------------------------
def test_rdp002_flags_for_over_set():
    source = "pending = {'a', 'b'}\nfor name in pending:\n    print(name)\n"
    findings = run_rule(UnorderedIterationRule(), source)
    assert [f.rule for f in findings] == ["RDP002"]


def test_rdp002_flags_list_of_set():
    findings = run_rule(UnorderedIterationRule(), "order = list({'a', 'b'})\n")
    assert len(findings) == 1
    assert "sorted" in findings[0].message


def test_rdp002_flags_comprehension_over_set_call():
    source = "names = [n for n in set(['b', 'a'])]\n"
    findings = run_rule(UnorderedIterationRule(), source)
    assert len(findings) == 1


def test_rdp002_allows_sorted_and_order_insensitive_consumers():
    source = (
        "pending = {'a', 'b'}\n"
        "for name in sorted(pending):\n"
        "    print(name)\n"
        "total = sum(len(n) for n in pending)\n"
        "count = len(pending)\n"
    )
    assert run_rule(UnorderedIterationRule(), source) == []


def test_rdp002_set_tracking_is_function_scoped():
    # `items` is a set in f() but a list in g(); only f's loop fires.
    source = (
        "def f():\n"
        "    items = {'a'}\n"
        "    for x in items:\n"
        "        print(x)\n"
        "def g():\n"
        "    items = ['a']\n"
        "    for x in items:\n"
        "        print(x)\n"
    )
    findings = run_rule(UnorderedIterationRule(), source)
    assert len(findings) == 1
    assert findings[0].line == 3


def test_rdp002_keys_iteration_is_a_warning():
    source = "d = {'a': 1}\nfor k in d.keys():\n    print(k)\n"
    findings = run_rule(UnorderedIterationRule(), source)
    assert [f.severity for f in findings] == ["warning"]


# ----------------------------------------------------------------------
# RDP003 -- blocking / OS calls in the simulated data plane.
# ----------------------------------------------------------------------
def test_rdp003_flags_threading_import_and_sleep():
    source = "import threading\nimport time\ntime.sleep(1)\n"
    findings = run_rule(BlockingCallRule(), source, path=SIM_PATH)
    assert {f.rule for f in findings} == {"RDP003"}
    assert len(findings) == 2  # the import and the sleep (not `import time`)


def test_rdp003_flags_raw_open():
    findings = run_rule(BlockingCallRule(), "f = open('x')\n", path=CORE_PATH)
    assert len(findings) == 1


def test_rdp003_only_applies_inside_the_data_plane():
    source = "import subprocess\n"
    assert run_rule(BlockingCallRule(), source, path="src/repro/tools/cli.py") == []
    assert run_rule(BlockingCallRule(), source, path=SIM_PATH) != []


# ----------------------------------------------------------------------
# RDP004 -- trace taxonomy.
# ----------------------------------------------------------------------
def test_rdp004_flags_unregistered_category():
    rule = TraceTaxonomyRule(categories=frozenset({"disk"}))
    source = "trace.complete('warp', 'read', 0.0, 1.0)\n"
    findings = run_rule(rule, source)
    assert len(findings) == 1
    assert "'warp'" in findings[0].message


def test_rdp004_allows_registered_category_and_non_tracer_receivers():
    rule = TraceTaxonomyRule(categories=frozenset({"disk"}))
    source = (
        "trace.complete('disk', 'read', 0.0, 1.0)\n"
        "self.sim.trace.instant('disk', 'spin', 0.0)\n"
        "registry.complete('warp', 'x', 0.0, 1.0)\n"  # not a tracer
    )
    assert run_rule(rule, source) == []


def test_rdp004_default_taxonomy_accepts_repo_categories():
    source = "trace.complete('recovery', 'window', 0.0, 1.0)\n"
    assert run_rule(TraceTaxonomyRule(), source) == []


# ----------------------------------------------------------------------
# RDP005 -- float accumulation.
# ----------------------------------------------------------------------
def test_rdp005_flags_bare_sum_of_floats():
    source = "xs = [0.1, 0.2]\nmean = sum(xs) / len(xs)\n"
    findings = run_rule(FloatSumRule(), source)
    assert len(findings) == 1
    assert "fsum" in findings[0].message


def test_rdp005_flags_sum_of_division_results():
    findings = run_rule(FloatSumRule(), "t = sum(x / 2 for x in items)\n")
    assert len(findings) == 1


def test_rdp005_allows_fsum_and_integer_sums():
    source = (
        "from math import fsum\n"
        "mean = fsum(xs) / len(xs)\n"
        "count = sum(counts)\n"
    )
    assert run_rule(FloatSumRule(), source) == []


def test_rdp005_scoped_to_stats_code():
    source = "mean = sum(xs) / len(xs)\n"
    assert run_rule(FloatSumRule(), source, path="src/repro/tools/x.py") == []


# ----------------------------------------------------------------------
# RDP006 -- annotation completeness.
# ----------------------------------------------------------------------
def test_rdp006_flags_unannotated_public_function():
    findings = run_rule(AnnotationRule(), "def compute(a, b):\n    return a\n")
    assert len(findings) == 1
    assert "a, b, return" in findings[0].message


def test_rdp006_flags_missing_return_and_star_args():
    source = "def f(a: int, *args, **kw) -> None:\n    pass\n"
    findings = run_rule(AnnotationRule(), source)
    assert "*args" in findings[0].message
    assert "**kw" in findings[0].message


def test_rdp006_allows_fully_annotated_and_private():
    source = (
        "class C:\n"
        "    def __init__(self, n: int) -> None:\n"
        "        self.n = n\n"
        "    def get(self) -> int:\n"
        "        return self.n\n"
        "    def _internal(self, x):\n"
        "        return x\n"
        "def _helper(y):\n"
        "    return y\n"
    )
    assert run_rule(AnnotationRule(), source) == []


def test_rdp006_scoped_to_core_and_sim():
    source = "def compute(a, b):\n    return a\n"
    assert run_rule(AnnotationRule(), source, path="src/repro/tools/x.py") == []


# ----------------------------------------------------------------------
# The default rule set.
# ----------------------------------------------------------------------
def test_default_rules_cover_all_registered_ids():
    ids = [rule.id for rule in default_rules()]
    assert ids == [
        "RDP001",
        "RDP002",
        "RDP003",
        "RDP004",
        "RDP005",
        "RDP006",
        "RDP101",
        "RDP102",
        "RDP103",
        "RDP104",
        "RDP105",
    ]
