"""Unit tests for size/time/bandwidth helpers."""

import pytest

from repro import units


def test_binary_and_decimal_sizes():
    assert units.KiB == 1024
    assert units.MiB == 1024**2
    assert units.GB == 10**9
    assert units.TB == 10**12


def test_gbps_conversion():
    assert units.gbps(10) == pytest.approx(1.25e9)
    assert units.mbps(100) == pytest.approx(12.5e6)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("64MB", 64 * units.MB),
        ("64MiB", 64 * units.MiB),
        ("64M", 64 * units.MiB),  # bare letters follow HDFS convention
        ("6GiB", 6 * units.GiB),
        ("2TB", 2 * units.TB),
        ("128", 128),
        ("1.5KiB", 1536),
    ],
)
def test_parse_size(text, expected):
    assert units.parse_size(text) == expected


@pytest.mark.parametrize("text", ["", "MB", "12XB", "1.0001KiB", "-5MB"])
def test_parse_size_rejects_garbage(text):
    with pytest.raises(ValueError):
        units.parse_size(text)


def test_format_size():
    assert units.format_size(512) == "512B"
    assert units.format_size(64 * units.MiB) == "64.0MiB"
    assert units.format_size(3 * units.TiB) == "3.0TiB"


def test_format_duration():
    assert units.format_duration(0.05) == "50ms"
    assert units.format_duration(2.5) == "2.50s"
    assert "2m" in units.format_duration(125)
    assert "h" in units.format_duration(7200)
    assert units.format_duration(-2.5).startswith("-")
