"""The cluster flight recorder: sampler, invariant auditor, SLO engine.

Covers the three contracts ISSUE 9 pins down:

- **observer-only**: sampled/audited runs are bitwise-identical to bare
  runs (table2 rows, chaos fingerprints, engine event sequences);
- **correct telemetry**: windowed percentiles match the stats kernel,
  ring buffers stay column-aligned, exports round-trip;
- **useful verdicts**: the auditor catches seeded corruption and stays
  silent on healthy clusters; SLO burn rates and the health report
  follow their definitions.
"""

import math

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.errors import AuditError
from repro.hdfs.config import DfsConfig
from repro.obs import audit as audit_mod
from repro.obs import slo as slo_mod
from repro.obs import timeseries as ts_mod
from repro.obs.metrics import cluster_metrics, cluster_snapshot
from repro.obs.timeseries import (
    Sampler,
    TimeSeriesStore,
    load_timeseries,
    percentile_label,
    write_timeseries,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram, MetricSet, percentile_from_buckets


def _cluster(seed=11, nodes=8):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        raidp=RaidpConfig(),
        superchunk_size=4 * units.MiB,
        payload_mode="tokens",
        seed=seed,
    )


def _write_files(dfs, nbytes=2 * units.MiB):
    def workload():
        for index, client in enumerate(dfs.clients):
            yield from client.write_file(f"/fr/f{index}", nbytes)

    dfs.sim.run_process(workload())


# ----------------------------------------------------------------------
# TimeSeriesStore.
# ----------------------------------------------------------------------
def test_store_columns_stay_aligned_across_eviction():
    store = TimeSeriesStore(capacity=3)
    store.append(0, 1.0, {"a": 1.0})
    store.append(0, 2.0, {"a": 2.0})
    # A series born late is None-padded to the current length...
    store.append(0, 3.0, {"a": 3.0, "b": 30.0})
    # ...and eviction drops the oldest row from *every* column.
    store.append(0, 4.0, {"a": 4.0, "b": 40.0})
    assert len(store) == 3
    assert store.total_appended == 4
    assert store.series("a") == [(2.0, 2.0), (3.0, 3.0), (4.0, 4.0)]
    assert store.series("b") == [(3.0, 30.0), (4.0, 40.0)]
    rows = list(store.rows())
    assert rows[0] == (0, 2.0, {"a": 2.0})
    assert rows[-1] == (0, 4.0, {"a": 4.0, "b": 40.0})


def test_store_filters_by_run():
    store = TimeSeriesStore(capacity=8)
    store.append(0, 1.0, {"a": 1.0})
    store.append(1, 1.0, {"a": 9.0})
    assert store.series("a", run=0) == [(1.0, 1.0)]
    assert store.series("a", run=1) == [(1.0, 9.0)]


# ----------------------------------------------------------------------
# Sampler: tick grid, counters/gauges, windowed percentiles.
# ----------------------------------------------------------------------
def test_sampler_grid_and_counter_series():
    metrics = MetricSet()
    box = [0]
    metrics.register_counter("ops", lambda: box[0])
    with ts_mod.capture(interval=0.5) as sampler:
        sim = Simulator()
        sampler.watch(metrics)

        def ticker():
            for _ in range(9):
                box[0] += 1
                yield sim.timeout(0.3)

        sim.run_process(ticker())
    # Ticks at 0.5, 1.0, ... while the schedule is non-empty; the body
    # spans 2.7 simulated seconds, so the 2.5 tick is the last one.
    assert sampler.store.series("ops") == [
        (0.5, 2.0), (1.0, 4.0), (1.5, 6.0), (2.0, 7.0), (2.5, 9.0)
    ]
    assert sampler.samples_taken == 5


def test_sampler_windowed_percentiles_match_stats_kernel():
    metrics = MetricSet()
    hist = metrics.histogram("lat")
    with ts_mod.capture(interval=1.0) as sampler:
        sim = Simulator()
        sampler.watch(metrics)

        window1 = {}

        def body():
            for value in (0.002, 0.004, 0.008, 0.02, 0.02, 0.3):
                hist.observe(value)
            window1["counts"] = list(hist.counts)
            window1["max"] = hist.max
            # Events at exactly a tick instant fire *before* the sample,
            # so the second observation lands strictly between ticks.
            yield sim.timeout(1.5)
            hist.observe(0.05)  # t=1.5: tick 2's window is just this one
            yield sim.timeout(1.0)  # keeps the schedule alive past t=2.0

        sim.run_process(body())
    points = dict(sampler.store.series("lat:p50"))
    p99 = dict(sampler.store.series("lat:p99"))
    counts = dict(sampler.store.series("lat:count"))
    assert counts == {1.0: 6.0, 2.0: 1.0}
    # Window 1 is the whole histogram-so-far, so the sampled values must
    # equal the stats kernel applied to the tick-1 cumulative buckets.
    for q, series in ((0.5, points), (0.99, p99)):
        assert series[1.0] == pytest.approx(
            percentile_from_buckets(
                hist.bounds, window1["counts"], q, window1["max"]
            )
        )
    # Window 2 contains only the 0.05 observation: its p50 lands inside
    # that observation's bucket, not anywhere near window 1's median.
    lo = max(b for b in hist.bounds if b < 0.05)
    hi = min(b for b in hist.bounds if b >= 0.05)
    assert lo < points[2.0] <= hi
    assert percentile_label(0.5) == "p50"
    assert percentile_label(0.999) == "p999"


def test_sampler_aggregates_labeled_histograms():
    """Per-disk labeled histograms roll up into a cluster-wide series."""
    with ts_mod.capture(interval=0.05) as sampler:
        dfs = _cluster()
        sampler.watch(cluster_metrics(dfs))
        _write_files(dfs)
    agg = sampler.store.series("disk_io_latency:count")
    assert agg, "aggregate series missing"
    per_disk_total = sum(
        value
        for name in sampler.store.names()
        if name.startswith("disk_io_latency{") and name.endswith(":count")
        for _, value in sampler.store.series(name)
    )
    assert sum(v for _, v in agg) == pytest.approx(per_disk_total)
    assert any(v > 0 for _, v in sampler.store.series("disk_io_latency:p99"))


# ----------------------------------------------------------------------
# Observer-only: bitwise identity.
# ----------------------------------------------------------------------
def test_sampled_run_is_bitwise_identical():
    def fingerprint(sampled):
        if sampled:
            with ts_mod.capture(interval=0.25):
                dfs = _cluster(seed=5)
                _write_files(dfs)
        else:
            dfs = _cluster(seed=5)
            _write_files(dfs)
        return (dfs.sim.now, dfs.sim._seq, cluster_snapshot(dfs))

    assert fingerprint(False) == fingerprint(True)


def test_table2_rows_bitwise_identical_under_flight_recorder():
    """One table2 sweep point, bare vs sampled+audited: same row."""
    from repro.experiments import table2_recovery as t2
    from repro.sim import snapshot

    key = next(
        key for key in t2.tasks()
        if key[0] == "raidp" and key[2] == 64 * units.MiB
    )
    assert not t2.task_deps(key)

    snapshot.GLOBAL_STORE.clear()
    bare = t2.run_task(key)
    snapshot.GLOBAL_STORE.clear()
    with ts_mod.capture(interval=0.5), audit_mod.capture(fail_fast=True):
        recorded = t2.run_task(key)
    snapshot.GLOBAL_STORE.clear()
    assert recorded == bare


def test_chaos_fingerprint_bitwise_identical_and_healthy():
    """The acceptance drill: one chaos schedule, bare vs flight-recorded.

    The fingerprints must match bit-for-bit and the recorded run must
    produce a health report with per-phase latency series, repair
    accounting, SLO verdicts, and zero un-waived audit violations.
    """
    from repro.tools.chaos import run_chaos

    bare = run_chaos(seed=20260809)
    recorded = run_chaos(seed=20260809, sample_interval=0.5, audit=True)
    assert bare.ok, bare.problems
    assert recorded.ok, recorded.problems
    assert recorded.fingerprint == bare.fingerprint
    health = recorded.health
    assert health is not None and health["schema"] == slo_mod.HEALTH_SCHEMA
    assert [p["phase"] for p in health["phases"]] == [
        "pre-fault", "fault", "recovery", "drain"
    ]
    pre = health["phases"][0]["series"]
    assert pre["disk_io_latency:p50"]["samples"] > 0
    assert pre["disk_io_latency:p99"]["samples"] > 0
    assert health["repair_gb"] >= 0.0
    assert health["audit"]["unwaived"] == 0
    # Detection/recovery probes audited beyond the per-tick hook.
    assert health["audit"]["audits"] > health["samples"]
    assert {s["name"] for s in health["slos"]} == {
        "disk-p50-latency", "disk-p99-latency", "blocks-at-risk",
        "repair-traffic",
    }
    dash = slo_mod.render_dash(health)
    assert "SLO verdicts" in dash and "phase fault" in dash


# ----------------------------------------------------------------------
# Exports: JSONL time series, Perfetto/JSONL traces.
# ----------------------------------------------------------------------
def test_timeseries_jsonl_round_trip(tmp_path):
    with ts_mod.capture(interval=0.05) as sampler:
        dfs = _cluster()
        sampler.watch(cluster_metrics(dfs))
        _write_files(dfs)
    path = str(tmp_path / "ts.jsonl")
    lines = write_timeseries(sampler, path)
    header, rows = load_timeseries(path)
    assert lines == len(rows) + 1
    assert header["schema"] == ts_mod.SCHEMA
    assert header["interval"] == 0.05
    assert header["samples_retained"] == len(rows) == len(sampler.store)
    assert header["series"] == sampler.store.names()
    reconstructed = [(r["run"], r["ts"], r["values"]) for r in rows]
    assert reconstructed == list(sampler.store.rows())


def test_trace_exports_carry_telemetry_samples(tmp_path):
    """Perfetto + JSONL trace exports round-trip with sample instants."""
    from repro.obs.export import load_trace, write_trace
    from repro.obs.tracer import Tracer
    from repro.obs.tracer import capture as trace_capture

    with trace_capture(Tracer()) as tracer:
        with ts_mod.capture(interval=0.05) as sampler:
            dfs = _cluster()
            sampler.watch(cluster_metrics(dfs))
            _write_files(dfs)
    telemetry = [e for e in tracer.events if e.category == "telemetry"]
    assert len(telemetry) == sampler.samples_taken
    assert all(e.name == "sample" for e in telemetry)

    jsonl = str(tmp_path / "run.jsonl")
    chrome = str(tmp_path / "run.json")
    assert write_trace(tracer, jsonl) == len(tracer.events)
    assert write_trace(tracer, chrome) == len(tracer.events)
    # JSONL round-trips exactly.
    loaded = load_trace(jsonl)
    assert [e.as_dict() for e in loaded] == [e.as_dict() for e in tracer.events]
    # Chrome rescales to microseconds; the telemetry instants must still
    # come back with their tick attributes and (approximate) timestamps.
    chrome_loaded = [
        e for e in load_trace(chrome) if e.category == "telemetry"
    ]
    assert len(chrome_loaded) == len(telemetry)
    for got, want in zip(chrome_loaded, telemetry):
        assert got.ts == pytest.approx(want.ts)
        assert got.attrs["tick"] == want.attrs["tick"]


# ----------------------------------------------------------------------
# Auditor.
# ----------------------------------------------------------------------
def test_auditor_clean_cluster_has_no_violations():
    dfs = _cluster()
    _write_files(dfs)
    auditor = audit_mod.Auditor(fail_fast=True)
    auditor.attach(dfs)
    auditor.audit(dfs.sim, dfs.sim.now, event="final")
    assert auditor.violations == []
    assert auditor.checks_run >= 6  # all three tiers ran
    assert auditor.summary()["unwaived"] == 0


def test_auditor_fail_fast_raises_on_seeded_corruption():
    dfs = _cluster()
    _write_files(dfs)
    locations = next(iter(dfs.namenode.all_blocks()))
    locations.datanodes.append(locations.datanodes[0])  # duplicate replica
    auditor = audit_mod.Auditor(fail_fast=True)
    auditor.attach(dfs)
    with pytest.raises(AuditError, match="duplicate"):
        auditor.audit(dfs.sim, dfs.sim.now)
    locations.datanodes.pop()


def test_auditor_records_and_waives():
    dfs = _cluster()
    _write_files(dfs)
    locations = next(iter(dfs.namenode.all_blocks()))
    locations.datanodes.append(locations.datanodes[0])
    auditor = audit_mod.Auditor()
    auditor.attach(dfs)
    new = auditor.audit(dfs.sim, 7.25)
    locations.datanodes.pop()
    assert new and all(v.check == "replication" for v in new)
    assert auditor.unwaived() == new
    # A window that misses the timestamp waives nothing...
    assert auditor.waive_between([(0.0, 7.0)], "early") == 0
    # ...the covering window waives everything, and the summary shows it.
    assert auditor.waive_between([(7.0, 8.0)], "fault window") == len(new)
    assert auditor.unwaived() == []
    summary = auditor.summary()
    assert summary["violations"] == len(new) and summary["unwaived"] == 0
    assert all(r.get("waiver") == "fault window" for r in summary["records"])


def test_auditor_flags_orphaned_superchunk():
    """A superchunk silently dropped from the layout (no freeze, no
    degraded enumeration) is exactly the rollback bug the check hunts."""
    dfs = _cluster()
    _write_files(dfs)
    # Pick a superchunk that actually holds blocks and drop one of its
    # homes from the layout without freezing or enumerating anything --
    # the state an interrupted remirror rollback would leave behind.
    sc = next(
        sc for sc in dfs.layout._superchunks.values()
        if dfs.map.used_slots(sc.sc_id) > 0
    )
    auditor = audit_mod.Auditor()
    auditor.attach(dfs)
    dfs.layout.remove_disk(sc.disk_a)
    new = auditor.audit(dfs.sim, dfs.sim.now, event="recovered")
    subject = f"sc{sc.sc_id}"
    assert any(
        v.check == "superchunk-orphan" and v.subject == subject for v in new
    )
    # Frozen (recovery in flight) silences that superchunk.
    dfs.map.freeze(sc.sc_id)
    try:
        assert not any(
            v.check == "superchunk-orphan" and v.subject == subject
            for v in auditor.audit(dfs.sim, dfs.sim.now, event="recovered")
        )
    finally:
        dfs.map.unfreeze(sc.sc_id)


# ----------------------------------------------------------------------
# SLO engine.
# ----------------------------------------------------------------------
def _points(values, t0=1.0, dt=1.0):
    return [(t0 + i * dt, v) for i, v in enumerate(values)]


def test_slo_each_mode_burn_rate():
    spec = slo_mod.SloSpec("lat", "x:p99", 0.1, comparison="<=", budget=0.2)
    result = slo_mod.evaluate_slo(spec, _points([0.05] * 8 + [0.5] * 2))
    assert result.samples == 10 and result.breaches == 2
    assert result.burn_rate == pytest.approx(1.0)  # 20% breach / 20% budget
    assert result.ok and result.worst == 0.5
    hot = slo_mod.evaluate_slo(spec, _points([0.05] * 6 + [0.5] * 4))
    assert hot.burn_rate == pytest.approx(2.0) and not hot.ok


def test_slo_zero_budget_and_final_mode():
    strict = slo_mod.SloSpec("zero", "x", 0.0, comparison="<=", budget=0.0)
    assert slo_mod.evaluate_slo(strict, _points([0.0, 0.0])).ok
    breached = slo_mod.evaluate_slo(strict, _points([0.0, 1.0]))
    assert breached.burn_rate == math.inf and not breached.ok

    final = slo_mod.SloSpec("budget", "x", 100.0, mode="final", unit="B")
    result = slo_mod.evaluate_slo(final, _points([10.0, 40.0, 80.0]))
    assert result.ok and result.worst == 80.0
    assert result.burn_rate == pytest.approx(0.8)  # utilization, not breach
    assert not slo_mod.evaluate_slo(final, _points([10.0, 120.0])).ok

    empty = slo_mod.evaluate_slo(strict, [])
    assert empty.ok and empty.samples == 0

    with pytest.raises(ValueError):
        slo_mod.SloSpec("bad", "x", 1.0, comparison="==")
    with pytest.raises(ValueError):
        slo_mod.SloSpec("bad", "x", 1.0, budget=1.5)


def test_sparkline_shape():
    assert slo_mod.sparkline([]) == ""
    flat = slo_mod.sparkline([3.0, 3.0, 3.0])
    assert len(flat) == 3 and len(set(flat)) == 1
    ramp = slo_mod.sparkline(list(range(16)), width=8)
    assert len(ramp) == 8
    assert ramp[0] == "▁" and ramp[-1] == "█"


def test_health_report_round_trip(tmp_path):
    with ts_mod.capture(interval=0.05) as sampler:
        dfs = _cluster()
        sampler.watch(cluster_metrics(dfs))
        _write_files(dfs)
    auditor = audit_mod.Auditor()
    auditor.attach(dfs)
    auditor.audit(dfs.sim, dfs.sim.now, event="final")
    report = slo_mod.health_report(sampler, auditor=auditor, title="unit")
    assert report["ok"]
    assert report["phases"][0]["phase"] == "all"
    path = str(tmp_path / "health.json")
    slo_mod.write_health_report(report, path)
    assert slo_mod.load_health_report(path) == report
    rendered = slo_mod.render_dash(report)
    assert "unit" in rendered and "HEALTHY" in rendered
