"""Unit tests for the server node model (CPU, devices, whole-node failure)."""

import pytest

from repro import units
from repro.sim.cluster import Cluster, ClusterSpec
from repro.sim.engine import Simulator
from repro.sim.node import CpuModel, Node


def test_compute_occupies_a_core():
    sim = Simulator()
    node = Node(sim, "n0", cpu=CpuModel(cores=1))
    finish = []

    def worker():
        yield from node.compute(1.0)
        finish.append(sim.now)

    sim.process(worker())
    sim.process(worker())
    sim.run()
    # One core: the second compute serializes behind the first.
    assert finish == [1.0, 2.0]


def test_multicore_compute_parallelism():
    sim = Simulator()
    node = Node(sim, "n0", cpu=CpuModel(cores=4))
    finish = []

    def worker():
        yield from node.compute(1.0)
        finish.append(sim.now)

    for _ in range(4):
        sim.process(worker())
    sim.run()
    assert finish == [1.0] * 4


def test_compute_bytes_scales_with_rate_and_intensity():
    sim = Simulator()
    node = Node(sim, "n0", cpu=CpuModel(cores=1, compute_rate=100 * units.MB))

    def body():
        yield from node.compute_bytes(200 * units.MB, intensity=0.5)

    sim.run_process(body())
    assert sim.now == pytest.approx(1.0)


def test_node_fail_takes_down_disks():
    sim = Simulator()
    node = Node(sim, "n0")
    disk_a = node.add_disk()
    disk_b = node.add_disk()
    node.fail()
    assert not node.alive
    assert disk_a.failed and disk_b.failed


def test_primary_accessors_require_devices():
    sim = Simulator()
    node = Node(sim, "n0")
    with pytest.raises(ValueError):
        node.primary_disk
    with pytest.raises(ValueError):
        node.primary_nic


def test_cluster_spec_builds_topology():
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=3, disks_per_node=2))
    assert len(cluster.nodes) == 3
    assert len(cluster.all_disks()) == 6
    # Two NICs per node: 10 Gbps primary, 1 Gbps secondary.
    node = cluster.node("n1")
    assert len(node.nics) == 2
    assert node.nics[0].tx_rate > node.nics[1].tx_rate
    totals = cluster.total_disk_stats()
    assert totals["reads"] == 0


def test_cluster_without_secondary_nic():
    sim = Simulator()
    cluster = Cluster(sim, ClusterSpec(num_nodes=2, secondary_nic_rate=None))
    assert len(cluster.nodes[0].nics) == 1


def test_fig2_style_render():
    from repro.core.cluster import RaidpCluster
    from repro.hdfs.config import DfsConfig

    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=5),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=2 * units.MiB,
        payload_mode="tokens",
    )
    dfs.sim.run_process(dfs.client(0).write_file("/f", 3 * units.MiB))
    art = dfs.render_with_lstors()
    assert "L[n0]" in art
    assert "xor(" in art  # at least one Lstor covers written data
    assert "[ok]" in art
