"""Tests for block-report reconciliation (HDFS metadata anti-entropy)."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.node import RaidpConfig
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec


def hdfs():
    return HdfsCluster(
        spec=ClusterSpec(num_nodes=4),
        config=DfsConfig(block_size=units.MiB, replication=2),
        payload_mode="tokens",
    )


def test_clean_report_changes_nothing():
    dfs = hdfs()
    dfs.sim.run_process(dfs.client(0).write_file("/f", 3 * units.MiB))
    for datanode in dfs.datanodes:
        missing, orphans = dfs.namenode.process_block_report(
            datanode.name, datanode.block_report()
        )
        assert missing == []
        assert orphans == []
    assert not dfs.namenode.under_replicated()


def test_report_surfaces_silently_lost_replicas():
    dfs = hdfs()
    dfs.sim.run_process(dfs.client(0).write_file("/f", 2 * units.MiB))
    block = dfs.namenode.file_blocks("/f")[0]
    locations = dfs.namenode.locate_block(block.block_id)
    victim = dfs.namenode.datanode(locations.datanodes[0])
    victim.drop_content(block.name)  # silent loss (wiped sector, fsck)
    missing, orphans = dfs.namenode.process_block_report(
        victim.name, victim.block_report()
    )
    assert missing == [block.name]
    assert orphans == []
    assert victim.name not in dfs.namenode.locate_block(block.block_id).datanodes
    assert dfs.namenode.under_replicated()


def test_report_surfaces_orphan_replicas():
    dfs = hdfs()
    dfs.sim.run_process(dfs.client(0).write_file("/f", units.MiB))
    block = dfs.namenode.file_blocks("/f")[0]
    locations = dfs.namenode.locate_block(block.block_id)
    holder = dfs.namenode.datanode(locations.datanodes[0])
    # The namespace forgets the file but the replica lingers (lazy
    # deletion that never completed).
    dfs.namenode.delete_file("/f")
    missing, orphans = dfs.namenode.process_block_report(
        holder.name, holder.block_report()
    )
    assert orphans == [block.name]
    assert missing == []


def test_raidp_report_excludes_prealloc_fillers():
    dfs = RaidpCluster(
        spec=ClusterSpec(num_nodes=4),
        config=DfsConfig(block_size=units.MiB, replication=2),
        raidp=RaidpConfig(update_oriented=True),
        superchunk_size=2 * units.MiB,
        payload_mode="tokens",
    )
    dfs.sim.run_process(dfs.client(0).write_file("/f", units.MiB))
    for datanode in dfs.datanodes:
        report = datanode.block_report()
        assert all(not name.startswith("pre_sc") for name in report)
        missing, orphans = dfs.namenode.process_block_report(datanode.name, report)
        assert missing == []
        assert orphans == []
