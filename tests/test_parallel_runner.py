"""The multiprocessing experiment fan-out: determinism and plumbing.

The hard requirement: the same experiment run with ``--jobs 1`` and
``--jobs 4`` must produce identical :class:`ExperimentResult` rows
(labels, values, order).  Each task key embeds its own placement seed, so
worker scheduling cannot leak into the results.
"""

import pytest

from repro.experiments import parallel
from repro.experiments.parallel import (
    TaskSpec,
    WHOLE_EXPERIMENT,
    resolve_jobs,
    run_many,
    run_specs,
    supports_tasks,
)
from repro.experiments.runner import main


# ----------------------------------------------------------------------
# Job-count resolution.
# ----------------------------------------------------------------------
def test_resolve_jobs_defaults_to_one(monkeypatch):
    monkeypatch.delenv(parallel.JOBS_ENV_VAR, raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_env_var(monkeypatch):
    monkeypatch.setenv(parallel.JOBS_ENV_VAR, "3")
    assert resolve_jobs(None) == 3


def test_resolve_jobs_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(parallel.JOBS_ENV_VAR, "3")
    assert resolve_jobs(2) == 2


def test_resolve_jobs_zero_means_all_cores(monkeypatch):
    import os

    monkeypatch.delenv(parallel.JOBS_ENV_VAR, raising=False)
    assert resolve_jobs(0) == (os.cpu_count() or 1)


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(parallel.JOBS_ENV_VAR, "many")
    with pytest.raises(ValueError):
        resolve_jobs(None)


# ----------------------------------------------------------------------
# Task protocol discovery.
# ----------------------------------------------------------------------
def test_sim_experiments_support_task_granularity():
    import repro.experiments.fig8_write as fig8
    import repro.experiments.fig9_read as fig9
    import repro.experiments.fig10_benchmarks as fig10
    import repro.experiments.table2_recovery as table2

    for module in (fig8, fig9, fig10, table2):
        assert supports_tasks(module)
        keys = module.tasks()
        assert keys, f"{module.__name__} emitted no tasks"
        assert len(set(keys)) == len(keys), "task keys must be unique"


def test_analytic_experiments_fall_back_to_whole_run():
    import repro.experiments.fig1_design_space as fig1

    assert not supports_tasks(fig1)
    specs = [TaskSpec("repro.experiments.fig1_design_space", WHOLE_EXPERIMENT, False)]
    (result,) = run_specs(specs, jobs=1)
    assert result.experiment == "fig1"


# ----------------------------------------------------------------------
# Determinism under parallelism.
# ----------------------------------------------------------------------
def test_fig8_jobs1_and_jobs4_rows_identical():
    """The acceptance property: row-for-row identical output at any jobs."""
    from repro.experiments.fig8_write import run

    sequential = run(seeds=(1,), jobs=1)
    parallel4 = run(seeds=(1,), jobs=4)
    assert sequential.rows == parallel4.rows
    assert sequential.experiment == parallel4.experiment
    assert sequential.unit == parallel4.unit


def test_table2_jobs1_and_jobs2_rows_identical():
    from repro.experiments.table2_recovery import merge, tasks
    from repro.experiments.parallel import fan_out

    module = "repro.experiments.table2_recovery"
    keys = tasks()
    # Restrict to the two cheapest rows to keep the test fast; the point
    # is pool-vs-inline equivalence, not coverage of every row.
    subset = [k for k in keys if k[0] == "raid6"]
    specs = [TaskSpec(module, key, False) for key in subset]
    inline = run_specs(specs, jobs=1)
    pooled = run_specs(specs, jobs=2)
    assert inline == pooled


def test_run_many_preserves_request_order():
    results = run_many(["table1", "fig1"], jobs=1)
    assert [r.experiment for r in results] == ["table1", "fig1"]


def test_run_many_rejects_unknown_experiment():
    with pytest.raises(KeyError):
        run_many(["fig99"], jobs=1)


def test_cli_jobs_flag(capsys):
    assert main(["fig1", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "design space" in out
