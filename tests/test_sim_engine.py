"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import ProcessInterrupt, Simulator


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def body():
        yield sim.timeout(1.5)
        seen.append(sim.now)
        yield sim.timeout(0.5)
        seen.append(sim.now)

    sim.process(body())
    sim.run()
    assert seen == [1.5, 2.0]
    assert sim.now == 2.0


def test_events_fire_in_time_order_with_fifo_ties():
    sim = Simulator()
    order = []

    def body(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(body("b", 2.0))
    sim.process(body("a", 1.0))
    sim.process(body("tie1", 1.0))
    sim.process(body("tie2", 1.0))
    sim.run()
    assert order == ["a", "tie1", "tie2", "b"]


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return 42

    def parent(results):
        value = yield sim.process(child())
        results.append(value)

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == [42]


def test_run_process_returns_value():
    sim = Simulator()

    def body():
        yield sim.timeout(3.0)
        return "done"

    assert sim.run_process(body()) == "done"
    assert sim.now == 3.0


def test_unobserved_process_failure_raises_from_run():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    sim.process(body())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_observed_process_failure_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(results):
        try:
            yield sim.process(child())
        except ValueError as err:
            results.append(str(err))

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == ["inner"]


def test_event_succeed_delivers_value():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    def opener():
        yield sim.timeout(2.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == ["open"]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        try:
            yield gate
        except KeyError as err:
            seen.append(type(err).__name__)

    def failer():
        yield sim.timeout(1.0)
        gate.fail(KeyError("nope"))

    sim.process(waiter())
    sim.process(failer())
    sim.run()
    assert seen == ["KeyError"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def body():
        timeouts = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
        values = yield sim.all_of(timeouts)
        return values

    assert sim.run_process(body()) == ["c", "a", "b"]
    assert sim.now == 3.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def body():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(body()) == []


def test_any_of_returns_first():
    sim = Simulator()

    def body():
        index, value = yield sim.any_of(
            [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
        )
        return index, value, sim.now

    # The losing timeout still drains afterwards, so check the time the
    # process observed, not the final clock.
    assert sim.run_process(body()) == (1, "fast", 1.0)


def test_deadlock_detection():
    sim = Simulator()

    def body():
        yield sim.event()  # never triggered

    sim.process(body())
    with pytest.raises(DeadlockError):
        sim.run()


def test_run_until_stops_early():
    sim = Simulator()
    seen = []

    def body():
        yield sim.timeout(10.0)
        seen.append("late")

    sim.process(body())
    sim.run(until=5.0)
    assert seen == []
    assert sim.now == 5.0


def test_interrupt_raises_inside_process():
    sim = Simulator()
    seen = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except ProcessInterrupt as err:
            seen.append(str(err))

    def killer(proc):
        yield sim.timeout(1.0)
        proc.interrupt("stop now")

    proc = sim.process(victim())
    sim.process(killer(proc))
    sim.run()
    assert seen == ["stop now"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def body():
        yield 5  # not an Event

    sim.process(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_nested_process_chains():
    sim = Simulator()

    def leaf(n):
        yield sim.timeout(float(n))
        return n * 2

    def mid(n):
        value = yield sim.process(leaf(n))
        return value + 1

    def root():
        values = yield sim.all_of([sim.process(mid(i)) for i in range(1, 4)])
        return values

    assert sim.run_process(root()) == [3, 5, 7]
