"""End-to-end lint and typing gates over the real source tree.

These are the tests that make the invariants *stick*: the whole of
``src/`` must lint clean with the repo allowlists, and every annotation
in the strict packages must actually resolve (a missing import hidden
by ``from __future__ import annotations`` fails here, the way it once
did for ``repro.obs.tracer``).
"""

import ast
import importlib
import inspect
import pkgutil
from pathlib import Path
from typing import get_type_hints

import pytest

import repro.core
import repro.sim
from repro.lint.cli import build_engine

SRC = Path(__file__).resolve().parent.parent / "src"


def test_source_tree_lints_clean():
    engine = build_engine()
    findings = engine.lint_paths([str(SRC)])
    errors = [f for f in findings if f.severity == "error"]
    assert errors == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in errors
    )


def test_source_tree_has_no_unsuppressed_warnings():
    engine = build_engine()
    findings = engine.lint_paths([str(SRC)])
    warnings = [f for f in findings if f.severity == "warning"]
    assert warnings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in warnings
    )


def _strict_modules():
    names = []
    for package in (repro.core, repro.sim):
        for info in pkgutil.iter_modules(package.__path__):
            names.append(f"{package.__name__}.{info.name}")
    return sorted(names)


def _type_checking_names(module):
    """Names imported only under ``if TYPE_CHECKING:`` (cycle breakers).

    Those are invisible at runtime by design; the resolution sweep
    treats them as opaque placeholder types rather than failures.
    """
    source = inspect.getsource(module)
    names = {}
    for node in ast.walk(ast.parse(source)):
        if not (isinstance(node, ast.If) and getattr(node.test, "id", "") == "TYPE_CHECKING"):
            continue
        for stmt in node.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    names[bound] = type(bound, (), {})
    return names


def test_promoted_packages_have_no_untyped_defs():
    """The local mirror of mypy's ``disallow_untyped_defs`` gate.

    CI runs mypy with strict overrides for ``repro.experiments`` and
    ``repro.tools`` (pyproject.toml); mypy is not in the local image, so
    this sweep enforces the same surface -- every def fully annotated --
    without it.
    """
    offenders = []
    for package in ("repro/experiments", "repro/tools"):
        for path in sorted((SRC / package).rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                args = node.args
                every = args.posonlyargs + args.args + args.kwonlyargs
                missing = [
                    arg.arg
                    for index, arg in enumerate(every)
                    if arg.annotation is None
                    and not (index == 0 and arg.arg in ("self", "cls"))
                ]
                if args.vararg is not None and args.vararg.annotation is None:
                    missing.append("*" + args.vararg.arg)
                if args.kwarg is not None and args.kwarg.annotation is None:
                    missing.append("**" + args.kwarg.arg)
                if node.returns is None:
                    missing.append("return")
                if missing:
                    offenders.append(
                        f"{path}:{node.lineno}: {node.name}({', '.join(missing)})"
                    )
    assert offenders == [], "\n".join(offenders)


@pytest.mark.parametrize("module_name", _strict_modules())
def test_annotations_resolve(module_name):
    """Every annotation in the strict packages resolves to a real type.

    ``from __future__ import annotations`` defers evaluation, so a
    forgotten typing import only explodes when someone *resolves* the
    hints -- which is exactly what this does, for every public callable.
    """
    module = importlib.import_module(module_name)
    localns = _type_checking_names(module)
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_") or getattr(obj, "__module__", None) != module_name:
            continue
        if inspect.isfunction(obj):
            get_type_hints(obj, localns=localns)
        elif inspect.isclass(obj):
            for _mname, method in sorted(vars(obj).items()):
                if inspect.isfunction(method):
                    get_type_hints(method, localns=localns)
