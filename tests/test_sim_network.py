"""Unit tests for the max-min fair-share network model."""

import pytest

from repro import units
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import Nic, Switch


def build(sim, rates):
    switch = Switch(sim)
    nics = [switch.attach(Nic(f"n{i}", rate)) for i, rate in enumerate(rates)]
    return switch, nics


def test_single_flow_runs_at_line_rate():
    sim = Simulator()
    rate = units.gbps(10)
    switch, (a, b) = build(sim, [rate, rate])

    def body():
        duration = yield switch.transfer(a, b, int(rate))  # 1 second of bytes
        return duration

    duration = sim.run_process(body())
    assert duration == pytest.approx(1.0, rel=0.01)
    assert a.stats.bytes_sent == int(rate)
    assert b.stats.bytes_received == int(rate)


def test_flow_limited_by_slower_endpoint():
    sim = Simulator()
    fast = units.gbps(10)
    slow = units.gbps(1)
    switch, (a, b) = build(sim, [fast, slow])

    def body():
        duration = yield switch.transfer(a, b, int(slow))  # 1s at the slow rate
        return duration

    duration = sim.run_process(body())
    assert duration == pytest.approx(1.0, rel=0.01)


def test_two_flows_share_receiver_fairly():
    sim = Simulator()
    rate = units.gbps(10)
    switch, (a, b, c) = build(sim, [rate, rate, rate])
    done_times = []

    def body(src):
        yield switch.transfer(src, c, int(rate))
        done_times.append(sim.now)

    sim.process(body(a))
    sim.process(body(b))
    sim.run()
    # Both flows share c's 10G receive port: each gets 5G, so 2s each.
    assert done_times[0] == pytest.approx(2.0, rel=0.01)
    assert done_times[1] == pytest.approx(2.0, rel=0.01)


def test_departing_flow_releases_bandwidth():
    sim = Simulator()
    rate = units.gbps(10)
    switch, (a, b, c) = build(sim, [rate, rate, rate])
    done_times = {}

    def small(src):
        yield switch.transfer(src, c, int(rate / 2))  # 0.5s at line rate
        done_times["small"] = sim.now

    def big(src):
        yield switch.transfer(src, c, int(rate))
        done_times["big"] = sim.now

    sim.process(small(a))
    sim.process(big(b))
    sim.run()
    # Shared at 5G each until the small flow finishes at t=1.0 (0.625GB at
    # 5Gbps takes 1s), then the big flow gets the full 10G.
    assert done_times["small"] == pytest.approx(1.0, rel=0.02)
    # Big flow: 1.0s at 5G moves half its bytes, remaining half at 10G
    # takes 0.5s => ~1.5s total.
    assert done_times["big"] == pytest.approx(1.5, rel=0.02)


def test_disjoint_flows_do_not_interfere():
    sim = Simulator()
    rate = units.gbps(10)
    switch, (a, b, c, d) = build(sim, [rate] * 4)
    done_times = []

    def body(src, dst):
        yield switch.transfer(src, dst, int(rate))
        done_times.append(sim.now)

    sim.process(body(a, b))
    sim.process(body(c, d))
    sim.run()
    assert done_times[0] == pytest.approx(1.0, rel=0.01)
    assert done_times[1] == pytest.approx(1.0, rel=0.01)


def test_incast_fifteen_senders_one_receiver():
    """Table 2's recovery pattern: N senders converge on one node."""
    sim = Simulator()
    rate = units.gbps(10)
    switch, nics = build(sim, [rate] * 16)
    receiver = nics[0]
    chunk = int(rate / 15)  # 1s aggregate at the receiver

    def body(src):
        yield switch.transfer(src, receiver, chunk)

    for src in nics[1:]:
        sim.process(body(src))
    sim.run()
    assert sim.now == pytest.approx(1.0, rel=0.02)


def test_zero_byte_transfer_completes_after_latency():
    sim = Simulator()
    switch, (a, b) = build(sim, [units.gbps(10)] * 2)

    def body():
        duration = yield switch.transfer(a, b, 0)
        return duration

    duration = sim.run_process(body())
    assert duration == pytest.approx(Switch.BASE_LATENCY, rel=0.1)


def test_negative_transfer_rejected():
    sim = Simulator()
    switch, (a, b) = build(sim, [units.gbps(10)] * 2)
    with pytest.raises(ValueError):
        switch.transfer(a, b, -1)


def test_duplicate_nic_attach_rejected():
    sim = Simulator()
    switch = Switch(sim)
    switch.attach(Nic("n0", units.gbps(10)))
    with pytest.raises(SimulationError):
        switch.attach(Nic("n0", units.gbps(10)))


def test_total_bytes_accumulates():
    sim = Simulator()
    rate = units.gbps(10)
    switch, (a, b) = build(sim, [rate, rate])

    def body():
        yield switch.transfer(a, b, 1000)
        yield switch.transfer(b, a, 2000)

    sim.run_process(body())
    assert switch.total_bytes == 3000
    traffic = switch.node_traffic()
    assert traffic["n0"].bytes_sent == 1000
    assert traffic["n0"].bytes_received == 2000


def test_many_concurrent_flows_conserve_bytes():
    sim = Simulator()
    rate = units.gbps(10)
    switch, nics = build(sim, [rate] * 8)
    total = 0

    def body(src, dst, nbytes):
        yield switch.transfer(src, dst, nbytes)

    for i in range(24):
        src = nics[i % 8]
        dst = nics[(i * 3 + 1) % 8]
        if src is dst:
            dst = nics[(i * 3 + 2) % 8]
        nbytes = (i + 1) * 10 * units.MiB
        total += nbytes
        sim.process(body(src, dst, nbytes))
    sim.run()
    assert switch.total_bytes == total
    assert switch.active_flows == 0
