"""Tests for bit-rot injection, scrubbing, and both repair paths."""

import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.core.scrubber import Scrubber, corrupt_block
from repro.errors import DataLossError, RecoveryError
from repro.hdfs.config import DfsConfig
from repro.sim.cluster import ClusterSpec


def cluster(payload_mode="bytes", num_nodes=5):
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=DfsConfig(block_size=units.MiB, replication=2),
        superchunk_size=4 * units.MiB,
        payload_mode=payload_mode,
    )


def write_and_pick_block(dfs, path="/f", size=3 * units.MiB):
    dfs.sim.run_process(dfs.client(0).write_file(path, size))
    block = dfs.namenode.file_blocks(path)[0]
    locations = dfs.namenode.locate_block(block.block_id)
    victim = dfs.datanode_by_name(locations.datanodes[0])
    return block, locations, victim


def test_corruption_breaks_checksum_only_locally():
    dfs = cluster()
    block, locations, victim = write_and_pick_block(dfs)
    corrupt_block(victim, block.name)
    assert not victim.content_checksum_ok(block.name)
    mirror = dfs.datanode_by_name(locations.datanodes[1])
    assert mirror.content_checksum_ok(block.name)


def test_scan_detects_and_repairs_from_mirror():
    dfs = cluster()
    block, _locations, victim = write_and_pick_block(dfs)
    corrupt_block(victim, block.name)
    scrubber = Scrubber(dfs)
    report = dfs.sim.run_process(scrubber.scan(victim, source="mirror"))
    assert report.corrupt == [block.name]
    assert report.repaired == [block.name]
    assert victim.content_checksum_ok(block.name)
    dfs.verify_mirrors()
    dfs.verify_parity()


def test_scan_clean_node_reports_nothing():
    dfs = cluster(payload_mode="tokens")
    _block, _locations, victim = write_and_pick_block(dfs)
    scrubber = Scrubber(dfs)
    report = dfs.sim.run_process(scrubber.scan(victim))
    assert report.scanned >= 1
    assert report.corrupt == []
    assert report.duration > 0


def test_repair_from_local_parity_is_network_free():
    dfs = cluster()
    block, locations, victim = write_and_pick_block(dfs, size=4 * units.MiB)
    corrupt_block(victim, block.name)
    before = dfs.total_network_bytes()
    scrubber = Scrubber(dfs)
    dfs.sim.run_process(scrubber.repair(victim, locations, source="local_parity"))
    assert dfs.total_network_bytes() == before  # zero network
    assert victim.content_checksum_ok(block.name)
    dfs.verify_mirrors()
    dfs.verify_parity()


def test_mirror_repair_moves_one_block_over_network():
    dfs = cluster()
    block, locations, victim = write_and_pick_block(dfs)
    corrupt_block(victim, block.name)
    before = dfs.total_network_bytes()
    scrubber = Scrubber(dfs)
    dfs.sim.run_process(scrubber.repair(victim, locations, source="mirror"))
    assert dfs.total_network_bytes() - before == block.size


def test_both_replicas_rotten_is_data_loss():
    dfs = cluster()
    block, locations, victim = write_and_pick_block(dfs)
    mirror = dfs.datanode_by_name(locations.datanodes[1])
    corrupt_block(victim, block.name, seed=1)
    corrupt_block(mirror, block.name, seed=2)
    scrubber = Scrubber(dfs)
    with pytest.raises(DataLossError):
        dfs.sim.run_process(scrubber.repair(victim, locations, source="mirror"))


def test_local_parity_repair_detects_unfixable_rot():
    """If the parity itself cannot reproduce the checksum (e.g. the rot
    hit after an unjournaled parity drift), the scrubber must not install
    garbage."""
    dfs = cluster()
    block, locations, victim = write_and_pick_block(dfs)
    corrupt_block(victim, block.name)
    # Sabotage the parity so reconstruction cannot match the checksum.
    victim.lstors.primary.absorb(
        locations.slot, dfs.factory.make("sabotage", 1, block.size)
    )
    scrubber = Scrubber(dfs)
    with pytest.raises(DataLossError):
        dfs.sim.run_process(
            scrubber.repair(victim, locations, source="local_parity")
        )


def test_unknown_repair_source_rejected():
    dfs = cluster(payload_mode="tokens")
    block, locations, victim = write_and_pick_block(dfs)
    scrubber = Scrubber(dfs)
    with pytest.raises(ValueError):
        dfs.sim.run_process(scrubber.repair(victim, locations, source="prayer"))


def test_token_mode_scrubbing_works():
    dfs = cluster(payload_mode="tokens")
    block, _locations, victim = write_and_pick_block(dfs)
    corrupt_block(victim, block.name)
    scrubber = Scrubber(dfs)
    report = dfs.sim.run_process(scrubber.scan(victim, source="mirror"))
    assert report.repaired == [block.name]
    dfs.verify_mirrors()
