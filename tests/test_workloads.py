"""Tests for the workload drivers (DFSIO, TeraSort, WordCount)."""

import numpy as np
import pytest

from repro import units
from repro.core.cluster import RaidpCluster
from repro.hdfs.config import DfsConfig
from repro.hdfs.filesystem import HdfsCluster
from repro.sim.cluster import ClusterSpec
from repro.workloads.dfsio import dfsio_read, dfsio_rewrite, dfsio_write
from repro.workloads.terasort import (
    generate_records,
    is_sorted,
    sort_records,
    teragen,
    terasort,
)
from repro.workloads.wordcount import (
    count_words,
    generate_text,
    wordcount,
    wordcount_input,
)


def hdfs(replication=3, num_nodes=4):
    config = DfsConfig(block_size=4 * units.MiB, replication=replication)
    return HdfsCluster(
        spec=ClusterSpec(num_nodes=num_nodes), config=config, payload_mode="tokens"
    )


def raidp(num_nodes=4):
    config = DfsConfig(block_size=4 * units.MiB, replication=2)
    return RaidpCluster(
        spec=ClusterSpec(num_nodes=num_nodes),
        config=config,
        superchunk_size=64 * units.MiB,
        payload_mode="tokens",
    )


TOTAL = 128 * units.MiB


# ----------------------------------------------------------------------
# DFSIO.
# ----------------------------------------------------------------------
def test_dfsio_write_runs_on_hdfs_and_raidp():
    for dfs in (hdfs(), raidp()):
        result = dfsio_write(dfs, TOTAL)
        assert result.runtime > 0
        assert result.tasks == dfs.config.tasks_per_node * len(dfs.clients)
        assert result.disk_bytes_written >= TOTAL  # replicas multiply this


def test_dfsio_write_volume_matches_replication():
    h3 = hdfs(replication=3)
    result = dfsio_write(h3, TOTAL)
    assert result.disk_bytes_written == pytest.approx(3 * TOTAL, rel=0.01)
    r = raidp()
    result = dfsio_write(r, TOTAL)
    assert result.disk_bytes_written == pytest.approx(2 * TOTAL, rel=0.01)


def test_dfsio_network_halved_on_raidp():
    h3 = hdfs(replication=3)
    r = raidp()
    net_h3 = dfsio_write(h3, TOTAL).network_bytes
    net_r = dfsio_write(r, TOTAL).network_bytes
    assert net_r == pytest.approx(net_h3 / 2, rel=0.02)


def test_dfsio_read_after_write():
    dfs = hdfs()
    dfsio_write(dfs, TOTAL)
    result = dfsio_read(dfs)
    assert result.runtime > 0
    assert result.disk_bytes_read == pytest.approx(TOTAL, rel=0.01)


def test_dfsio_rewrite_bumps_versions():
    dfs = raidp()
    dfsio_write(dfs, TOTAL)
    result = dfsio_rewrite(dfs)
    assert result.runtime > 0
    for locations in dfs.namenode.all_blocks():
        assert locations.version == 2


def test_dfsio_rejects_tiny_totals():
    with pytest.raises(ValueError):
        dfsio_write(hdfs(), 4)


# ----------------------------------------------------------------------
# TeraSort functional core.
# ----------------------------------------------------------------------
def test_sort_records_sorts():
    records = generate_records(500, seed=42)
    sorted_records = sort_records(records)
    assert is_sorted(sorted_records)
    assert not is_sorted(records)  # vanishingly unlikely to be pre-sorted


def test_sort_records_is_permutation():
    records = generate_records(200, seed=7)
    sorted_records = sort_records(records)
    assert sorted(map(bytes, records)) == list(map(bytes, sorted_records))


def test_sort_records_rejects_bad_shape():
    with pytest.raises(ValueError):
        sort_records(np.zeros((10, 50), dtype=np.uint8))


# ----------------------------------------------------------------------
# TeraSort timed workload.
# ----------------------------------------------------------------------
def test_terasort_runs_and_writes_output():
    dfs = hdfs()
    teragen(dfs, TOTAL)
    result = terasort(dfs, TOTAL)
    assert result.runtime > 0
    out_files = [p for p in dfs.namenode.list_files() if p.startswith("/terasort/out")]
    assert len(out_files) == result.tasks


def test_terasort_network_reflects_replication():
    h3 = hdfs(replication=3)
    teragen(h3, TOTAL)
    net_h3 = terasort(h3, TOTAL).network_bytes
    r = raidp()
    teragen(r, TOTAL)
    net_r = terasort(r, TOTAL).network_bytes
    # Shuffle volume is equal; the output-replication volume halves, so
    # RAIDP lands clearly below HDFS-3 but above half.
    assert net_r < net_h3


# ----------------------------------------------------------------------
# WordCount.
# ----------------------------------------------------------------------
def test_count_words_counts():
    assert count_words("a b a c a b") == {"a": 3, "b": 2, "c": 1}
    assert count_words("") == {}


def test_generate_text_vocabulary_bound():
    text = generate_text(1000, seed=1)
    counts = count_words(text)
    assert sum(counts.values()) == 1000
    assert len(counts) <= 100


def test_wordcount_runs_and_is_read_dominated():
    dfs = hdfs()
    wordcount_input(dfs, TOTAL)
    result = wordcount(dfs, TOTAL)
    assert result.runtime > 0
    assert result.disk_bytes_read > result.disk_bytes_written / 2


def test_wordcount_cpu_makes_it_slower_than_plain_read():
    dfs = hdfs()
    dfsio_write(dfs, TOTAL)
    read_result = dfsio_read(dfs)
    dfs2 = hdfs()
    wordcount_input(dfs2, TOTAL)
    wc_result = wordcount(dfs2, TOTAL)
    assert wc_result.runtime > read_result.runtime


def test_workload_result_summary_renders():
    dfs = hdfs()
    result = dfsio_write(dfs, TOTAL)
    text = result.summary()
    assert "dfsio-write" in text
    assert "GB" in text
