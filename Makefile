# Developer entry points.  `make verify` is what CI runs.

PYTHON     ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test lint typecheck bench bench-kernels bench-check chaos verify experiments durability-smoke clean

# Tier-1: the full unit/integration/property suite.
test:
	$(PYTHON) -m pytest -x -q

# Determinism & invariant linter (rules RDP001..RDP007 plus the
# flow-sensitive RDP101..RDP105; see DESIGN.md §10 and §14).  --strict
# promotes warnings to failures; the incremental cache under
# .lint-cache/ makes warm runs near-instant (use --no-cache to bypass).
lint:
	$(PYTHON) -m repro.lint --strict src/

# Strict typing gate (config in pyproject.toml).  mypy is a CI-installed
# dev dependency; locally the target degrades to a visible skip rather
# than failing machines without it.
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy src/repro \
		|| echo "typecheck: mypy not installed; skipping (CI runs it)"

# Full pytest-benchmark harness (slow; asserts every figure/table shape).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast kernel-only perf probe (no experiments).
bench-kernels:
	$(PYTHON) -m repro.tools.bench --kernels-only --output /dev/null

# Perf regression gate: re-run the kernels and compare against the
# committed BENCH_sim.json (throughput floor + solver-speedup bound).
bench-check:
	$(PYTHON) -m repro.tools.bench --check

# Chaos soak: a seeded randomized failure schedule (disk/node/NIC/Lstor
# faults) injected under live DFSIO+TeraSort traffic, run twice to prove
# the whole lifecycle is deterministic.  `--seed N` to replay a schedule.
CHAOS_ARGS ?=
chaos:
	$(PYTHON) -m repro.tools.chaos --runs 2 $(CHAOS_ARGS)

# Lint + typing gates, tier-1 tests, chaos soak, and the smoke-scale
# perf report.  Regenerates BENCH_sim.json so perf changes show up as a
# diff in review.
verify: lint typecheck test chaos
	$(PYTHON) -m repro.tools.bench --compare-jobs 1,4

# Small-fleet durability smoke: the §2 experiment end-to-end -- analytic
# ladder, legacy small-fleet simulator, and the long-horizon Monte-Carlo
# engine (1k disks x 10 years) -- at smoke scale.
durability-smoke:
	$(PYTHON) -m repro.experiments ext-durability

# Regenerate every table/figure of the paper (uses all cores).
experiments:
	$(PYTHON) -m repro.experiments all --full --jobs 0

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks
